//! The PS wire protocol: a compact binary codec for every request a worker
//! (or the control plane) can make of a [`crate::PsServer`], plus the
//! length-prefixed framing both transport backends speak.
//!
//! Layout is little-endian throughout. A frame on a byte stream is
//!
//! ```text
//! [u32 payload_len][payload]
//! ```
//!
//! and a payload is `[u8 opcode][body]`. Floats are carried as raw IEEE-754
//! bits (`to_le_bytes`), so encode→decode→encode is byte-exact even for
//! NaNs — the codec never reinterprets gradients, it only moves them.
//!
//! The hot-path messages have dedicated zero-allocation encoders/decoders
//! (`encode_push_shard`, `decode_push_shard_into`, `decode_pulled_into`)
//! that the [`crate::transport::NetRouter`] and the server endpoints use to
//! keep the steady state allocation-free; the owned [`Request`]/[`Reply`]
//! enums exist for the cold control-plane paths and for exercising the
//! codec in property tests.

use std::fmt;

use sync_switch_telemetry::{HistogramSnapshot, ServerStatsSnapshot, HIST_BUCKETS, OPCODE_SLOTS};

/// Frames larger than this are rejected when reading from a stream — a
/// corrupted length prefix must not trigger a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

/// Version byte of the [`op::SEQUENCED`] wrapper header. Bumped if the
/// sequencing header layout ever changes; a server seeing a newer version
/// rejects the frame with [`WireError::BadVersion`] instead of misparsing.
pub const SEQ_WIRE_VERSION: u8 = 1;

/// Decode/framing errors. These indicate protocol corruption (or a version
/// skew that cannot happen in-process), never ordinary data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// The first payload byte is not a known opcode.
    UnknownOpcode(u8),
    /// Bytes remained after the last field of the message.
    TrailingBytes(usize),
    /// A frame length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversize(usize),
    /// The reply opcode did not match the request that was sent.
    UnexpectedReply(u8),
    /// A sequencing header carried an unsupported version byte.
    BadVersion(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Oversize(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME_BYTES}"),
            WireError::UnexpectedReply(op) => write!(f, "unexpected reply opcode {op:#04x}"),
            WireError::BadVersion(v) => write!(f, "unsupported sequencing header version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Request opcodes (`0x01..`). Replies live in `0x81..` so a frame's first
/// byte always identifies its direction.
pub mod op {
    /// Stage-1 apply of one shard's gradient on the owning server.
    pub const PUSH_SHARD: u8 = 0x01;
    /// Pull the committed view of every owned shard.
    pub const PULL_COMMITTED: u8 = 0x02;
    /// Stage-2 reconciliation: commit every owned shard's live state.
    pub const SYNC_ROUND: u8 = 0x03;
    /// Unconditional commit-all (BSP barriers, switches, restore).
    pub const DRAIN: u8 = 0x04;
    /// Snapshot the live parameters or velocity.
    pub const SNAPSHOT: u8 = 0x05;
    /// Overwrite live parameters and velocity from a checkpoint.
    pub const RESTORE: u8 = 0x06;
    /// Zero the live velocity.
    pub const RESET_VELOCITY: u8 = 0x07;
    /// Ask whether every live parameter is finite.
    pub const CHECK_FINITE: u8 = 0x08;
    /// Terminate the server's event loop / connection handler.
    pub const SHUTDOWN: u8 = 0x09;
    /// Stage-1 apply of a *sparse* gradient — only the touched segments of
    /// the shard travel, the ASP payload saver for embedding workloads.
    pub const PUSH_SHARD_SPARSE: u8 = 0x0a;
    /// Wrapper for idempotent re-send: the body is
    /// `[u8 version][u64 client][u32 seq][inner request payload]`. The
    /// server deduplicates on `(client, seq)` and replays the cached reply
    /// for a duplicate, so a retried mutating request is applied at most
    /// once (see [`crate::transport::ServerEndpoint`]).
    pub const SEQUENCED: u8 = 0x0b;
    /// Readiness/identity probe: "who are you, and what do you own?". A
    /// bodyless request; the reply is [`INFO`]. Sent by workers to wait for
    /// a server to come up and to validate a cluster spec, and by the
    /// supervisor to detect a *respawned* server (its nonce changes).
    pub const HELLO: u8 = 0x0c;
    /// Telemetry scrape: "hand over your request/apply accounting". A
    /// bodyless request; the reply is [`STATS_DATA`]. Sent by
    /// [`crate::transport::NetRouter::scrape_stats`] — from the
    /// `ps-worker` binary, the supervisor, or any live monitor — without
    /// perturbing the serving path beyond one cheap atomic snapshot.
    pub const STATS: u8 = 0x0d;

    /// Reply to [`PUSH_SHARD`]: the pre-apply shard clock.
    pub const PUSH_ACK: u8 = 0x81;
    /// Reply to [`PULL_COMMITTED`]: owned params + committed clocks.
    pub const PULLED: u8 = 0x82;
    /// Reply to [`SYNC_ROUND`] / [`DRAIN`].
    pub const SYNCED: u8 = 0x83;
    /// Reply to [`SNAPSHOT`]: the requested vector.
    pub const SNAPSHOT_DATA: u8 = 0x84;
    /// Generic success reply ([`RESTORE`], [`RESET_VELOCITY`]).
    pub const OK: u8 = 0x85;
    /// Reply to [`CHECK_FINITE`].
    pub const FINITE: u8 = 0x86;
    /// Reply to [`HELLO`]: the server's identity and owned slice.
    pub const INFO: u8 = 0x87;
    /// Reply to [`STATS`]: the server's stats snapshot.
    pub const STATS_DATA: u8 = 0x88;
}

/// A server's self-description, returned in reply to [`op::HELLO`].
///
/// Workers use it as the readiness handshake (a reply at all means the
/// listener is up and serving) and to cross-check the cluster spec against
/// what the server actually owns; the cross-process supervisor uses `nonce`
/// to tell a *respawned* server (fresh store, needs a snapshot restore)
/// from one that merely dropped a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Instance nonce: unique per constructed `PsServer`, across processes.
    /// A changed nonce at the same address means the process was restarted.
    pub nonce: u64,
    /// The server's index in the tier.
    pub server: u32,
    /// First global shard index this server owns.
    pub first_shard: u32,
    /// Number of consecutive shards owned.
    pub shard_count: u32,
    /// First flat-parameter index of the owned slice.
    pub param_offset: u64,
    /// Length of the owned flat-parameter slice.
    pub param_len: u64,
}

/// A decoded request frame (owned form — the hot paths use the streaming
/// encoders below instead).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply `grad` to the owner's live shard `shard` (server-local index).
    PushShard {
        /// Server-local shard index.
        shard: u32,
        /// Learning rate for the momentum-SGD step.
        lr: f64,
        /// Momentum coefficient.
        momentum: f64,
        /// The gradient slice for exactly that shard.
        grad: Vec<f32>,
    },
    /// Apply a sparse gradient to the owner's live shard `shard`: only the
    /// listed segments carry values; the rest of the shard takes the
    /// zero-gradient momentum step (see
    /// [`crate::store::UpdateData::Sparse`]).
    PushShardSparse {
        /// Server-local shard index.
        shard: u32,
        /// Learning rate for the momentum-SGD step.
        lr: f64,
        /// Momentum coefficient.
        momentum: f64,
        /// Shard-relative `(start, len)` segments, ascending and disjoint.
        indices: Vec<(u32, u32)>,
        /// Concatenated gradient values of the segments.
        rows: Vec<f32>,
    },
    /// Pull the committed view of every owned shard.
    PullCommitted,
    /// Stage-2 reconciliation round on this server.
    SyncRound,
    /// Unconditional commit-all.
    Drain,
    /// Snapshot the live parameters (`velocity == false`) or velocity.
    Snapshot {
        /// Which vector to snapshot.
        velocity: bool,
    },
    /// Overwrite live parameters and velocity.
    Restore {
        /// New parameters for the owned slice.
        params: Vec<f32>,
        /// New velocity for the owned slice.
        velocity: Vec<f32>,
    },
    /// Zero the live velocity.
    ResetVelocity,
    /// Ask whether every live parameter is finite.
    CheckFinite,
    /// Readiness/identity probe; replied to with [`Reply::Info`].
    Hello,
    /// Telemetry scrape; replied to with [`Reply::Stats`].
    Stats,
    /// Terminate the serving loop.
    Shutdown,
}

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Pre-apply shard clock of a [`Request::PushShard`].
    PushAck {
        /// The owner's live shard clock before the apply.
        prev_clock: u64,
    },
    /// Committed view of the owned slice.
    Pulled {
        /// Owned parameters, in global flat order.
        params: Vec<f32>,
        /// Committed clock per owned shard.
        clocks: Vec<u64>,
    },
    /// A sync round / drain completed.
    Synced,
    /// Snapshot payload.
    SnapshotData {
        /// The requested vector.
        data: Vec<f32>,
    },
    /// Generic success.
    Ok,
    /// Finiteness answer.
    Finite {
        /// Whether every live parameter is finite.
        finite: bool,
    },
    /// The server's identity and owned slice, replying to [`Request::Hello`].
    Info(ServerInfo),
    /// The server's request/apply accounting, replying to
    /// [`Request::Stats`].
    Stats(ServerStatsSnapshot),
}

// ---------------------------------------------------------------- encoding

#[inline]
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
    put_u32(buf, vs.len() as u32);
    buf.reserve(vs.len() * 4);
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u32(buf, vs.len() as u32);
    buf.reserve(vs.len() * 8);
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends a `PushShard` payload to `buf` without intermediate allocation.
pub fn encode_push_shard(buf: &mut Vec<u8>, shard: u32, lr: f64, momentum: f64, grad: &[f32]) {
    buf.push(op::PUSH_SHARD);
    put_u32(buf, shard);
    put_f64(buf, lr);
    put_f64(buf, momentum);
    put_f32s(buf, grad);
}

/// Appends a `PushShardSparse` payload to `buf` without intermediate
/// allocation: `[shard][lr][momentum][n_segments][(start, len)…][values]`.
pub fn encode_push_shard_sparse(
    buf: &mut Vec<u8>,
    shard: u32,
    lr: f64,
    momentum: f64,
    indices: &[(u32, u32)],
    rows: &[f32],
) {
    buf.push(op::PUSH_SHARD_SPARSE);
    put_u32(buf, shard);
    put_f64(buf, lr);
    put_f64(buf, momentum);
    put_u32(buf, indices.len() as u32);
    buf.reserve(indices.len() * 8);
    for &(start, len) in indices {
        put_u32(buf, start);
        put_u32(buf, len);
    }
    put_f32s(buf, rows);
}

/// Appends a bodyless request payload (`PullCommitted`, `SyncRound`,
/// `Drain`, `ResetVelocity`, `CheckFinite`, `Shutdown`).
pub fn encode_bodyless(buf: &mut Vec<u8>, opcode: u8) {
    buf.push(opcode);
}

/// Appends a `Pulled` reply payload directly from the server's slices.
pub fn encode_pulled(buf: &mut Vec<u8>, params: &[f32], clocks: &[u64]) {
    buf.push(op::PULLED);
    put_f32s(buf, params);
    put_u64s(buf, clocks);
}

/// Appends a `PushAck` reply payload.
pub fn encode_push_ack(buf: &mut Vec<u8>, prev_clock: u64) {
    buf.push(op::PUSH_ACK);
    put_u64(buf, prev_clock);
}

/// Appends a `SnapshotData` reply payload.
pub fn encode_snapshot_data(buf: &mut Vec<u8>, data: &[f32]) {
    buf.push(op::SNAPSHOT_DATA);
    put_f32s(buf, data);
}

/// Appends a `Restore` request payload directly from checkpoint slices.
pub fn encode_restore(buf: &mut Vec<u8>, params: &[f32], velocity: &[f32]) {
    buf.push(op::RESTORE);
    put_f32s(buf, params);
    put_f32s(buf, velocity);
}

/// Appends an `Info` reply payload.
pub fn encode_server_info(buf: &mut Vec<u8>, info: &ServerInfo) {
    buf.push(op::INFO);
    put_u64(buf, info.nonce);
    put_u32(buf, info.server);
    put_u32(buf, info.first_shard);
    put_u32(buf, info.shard_count);
    put_u64(buf, info.param_offset);
    put_u64(buf, info.param_len);
}

/// Decodes an `Info` reply payload.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed `Info`.
pub fn decode_server_info(payload: &[u8]) -> Result<ServerInfo, WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::INFO => {}
        other => return Err(WireError::UnexpectedReply(other)),
    }
    let info = ServerInfo {
        nonce: c.u64()?,
        server: c.u32()?,
        first_shard: c.u32()?,
        shard_count: c.u32()?,
        param_offset: c.u64()?,
        param_len: c.u64()?,
    };
    c.finish()?;
    Ok(info)
}

/// Appends a `Stats` reply payload: the stats snapshot in fixed order —
/// `[server][requests][bytes_in][bytes_out][dedup_hits]` followed by the
/// apply histogram (`[count][sum][max][buckets]`) and the per-shard apply
/// vectors. Every vector is length-prefixed, but the decoder pins the
/// fixed-size ones ([`OPCODE_SLOTS`] request slots, [`HIST_BUCKETS`]
/// buckets) so a version-skewed peer fails loudly instead of misparsing.
pub fn encode_stats_snapshot(buf: &mut Vec<u8>, stats: &ServerStatsSnapshot) {
    buf.push(op::STATS_DATA);
    put_u32(buf, stats.server);
    put_u64s(buf, &stats.requests);
    put_u64(buf, stats.bytes_in);
    put_u64(buf, stats.bytes_out);
    put_u64(buf, stats.dedup_hits);
    put_u64(buf, stats.apply_ns.count);
    put_u64(buf, stats.apply_ns.sum);
    put_u64(buf, stats.apply_ns.max);
    put_u64s(buf, &stats.apply_ns.buckets);
    put_u64s(buf, &stats.shard_apply_ns);
    put_u64s(buf, &stats.shard_applies);
}

/// Decodes a `Stats` reply payload.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed `Stats`
/// reply: truncated, trailing bytes, a request-slot or bucket vector of
/// the wrong fixed size, or per-shard vectors of differing lengths.
pub fn decode_stats_snapshot(payload: &[u8]) -> Result<ServerStatsSnapshot, WireError> {
    fn u64_vec(c: &mut Cursor<'_>) -> Result<Vec<u64>, WireError> {
        let n = c.u32()? as usize;
        let bytes = c.take(n.checked_mul(8).ok_or(WireError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            .collect())
    }
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::STATS_DATA => {}
        other => return Err(WireError::UnexpectedReply(other)),
    }
    let server = c.u32()?;
    let requests = u64_vec(&mut c)?;
    if requests.len() != OPCODE_SLOTS {
        return Err(WireError::Truncated);
    }
    let bytes_in = c.u64()?;
    let bytes_out = c.u64()?;
    let dedup_hits = c.u64()?;
    let count = c.u64()?;
    let sum = c.u64()?;
    let max = c.u64()?;
    let buckets = u64_vec(&mut c)?;
    if buckets.len() != HIST_BUCKETS {
        return Err(WireError::Truncated);
    }
    let shard_apply_ns = u64_vec(&mut c)?;
    let shard_applies = u64_vec(&mut c)?;
    if shard_apply_ns.len() != shard_applies.len() {
        return Err(WireError::Truncated);
    }
    c.finish()?;
    Ok(ServerStatsSnapshot {
        server,
        requests,
        bytes_in,
        bytes_out,
        dedup_hits,
        apply_ns: HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        },
        shard_apply_ns,
        shard_applies,
    })
}

/// Appends the [`op::SEQUENCED`] wrapper header; the caller encodes the
/// inner request payload immediately after it. `client` identifies the
/// sending connection-slot process-wide; `seq` is its per-slot request
/// sequence number, re-used verbatim when the request is re-sent.
pub fn encode_sequenced_prefix(buf: &mut Vec<u8>, client: u64, seq: u32) {
    buf.push(op::SEQUENCED);
    buf.push(SEQ_WIRE_VERSION);
    put_u64(buf, client);
    put_u32(buf, seq);
}

/// Splits a [`op::SEQUENCED`] payload into `(client, seq, inner payload)`.
///
/// The inner payload is *not* validated here — it is handed to the normal
/// request dispatch, which performs its own decoding.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a sequenced wrapper, the
/// version byte is unsupported, or the header is truncated.
pub fn decode_sequenced_prefix(payload: &[u8]) -> Result<(u64, u32, &[u8]), WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::SEQUENCED => {}
        other => return Err(WireError::UnknownOpcode(other)),
    }
    match c.u8()? {
        SEQ_WIRE_VERSION => {}
        v => return Err(WireError::BadVersion(v)),
    }
    let client = c.u64()?;
    let seq = c.u32()?;
    // No `finish()`: everything after the header is the inner request.
    Ok((client, seq, &payload[c.pos..]))
}

impl Request {
    /// Appends this request's payload to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::PushShard {
                shard,
                lr,
                momentum,
                grad,
            } => encode_push_shard(buf, *shard, *lr, *momentum, grad),
            Request::PushShardSparse {
                shard,
                lr,
                momentum,
                indices,
                rows,
            } => encode_push_shard_sparse(buf, *shard, *lr, *momentum, indices, rows),
            Request::PullCommitted => encode_bodyless(buf, op::PULL_COMMITTED),
            Request::SyncRound => encode_bodyless(buf, op::SYNC_ROUND),
            Request::Drain => encode_bodyless(buf, op::DRAIN),
            Request::Snapshot { velocity } => {
                buf.push(op::SNAPSHOT);
                buf.push(u8::from(*velocity));
            }
            Request::Restore { params, velocity } => encode_restore(buf, params, velocity),
            Request::ResetVelocity => encode_bodyless(buf, op::RESET_VELOCITY),
            Request::CheckFinite => encode_bodyless(buf, op::CHECK_FINITE),
            Request::Hello => encode_bodyless(buf, op::HELLO),
            Request::Stats => encode_bodyless(buf, op::STATS),
            Request::Shutdown => encode_bodyless(buf, op::SHUTDOWN),
        }
    }
}

impl Reply {
    /// Appends this reply's payload to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::PushAck { prev_clock } => encode_push_ack(buf, *prev_clock),
            Reply::Pulled { params, clocks } => encode_pulled(buf, params, clocks),
            Reply::Synced => encode_bodyless(buf, op::SYNCED),
            Reply::SnapshotData { data } => encode_snapshot_data(buf, data),
            Reply::Ok => encode_bodyless(buf, op::OK),
            Reply::Finite { finite } => {
                buf.push(op::FINITE);
                buf.push(u8::from(*finite));
            }
            Reply::Info(info) => encode_server_info(buf, info),
            Reply::Stats(stats) => encode_stats_snapshot(buf, stats),
        }
    }
}

// ---------------------------------------------------------------- decoding

/// A cursor over a payload; every getter checks bounds.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed f32 run into `out` (resized in place, so a
    /// reused buffer allocates nothing in the steady state).
    fn f32s_into(&mut self, out: &mut Vec<f32>) -> Result<(), WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n.checked_mul(4).ok_or(WireError::Truncated)?)?;
        out.clear();
        out.reserve(n);
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(())
    }

    /// Reads a length-prefixed `(u32, u32)` segment list into `out`
    /// (resized in place, zero-alloc when reused).
    fn segments_into(&mut self, out: &mut Vec<(u32, u32)>) -> Result<(), WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n.checked_mul(8).ok_or(WireError::Truncated)?)?;
        out.clear();
        out.reserve(n);
        out.extend(bytes.chunks_exact(8).map(|c| {
            (
                u32::from_le_bytes(c[..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..].try_into().unwrap()),
            )
        }));
        Ok(())
    }

    /// Reads a length-prefixed f32 run into an exact-length slice.
    fn f32s_into_slice(&mut self, out: &mut [f32]) -> Result<(), WireError> {
        let n = self.u32()? as usize;
        if n != out.len() {
            // A size mismatch means the frame disagrees with the layout the
            // client derived at launch — corruption, not a soft error.
            return Err(WireError::Truncated);
        }
        let bytes = self.take(n.checked_mul(4).ok_or(WireError::Truncated)?)?;
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = f32::from_le_bytes(c.try_into().unwrap());
        }
        Ok(())
    }

    fn u64s_into_slice(&mut self, out: &mut [u64]) -> Result<(), WireError> {
        let n = self.u32()? as usize;
        if n != out.len() {
            return Err(WireError::Truncated);
        }
        let bytes = self.take(n.checked_mul(8).ok_or(WireError::Truncated)?)?;
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *o = u64::from_le_bytes(c.try_into().unwrap());
        }
        Ok(())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::TrailingBytes(self.bytes.len() - self.pos));
        }
        Ok(())
    }
}

/// Decodes a `PushShard` payload, reading the gradient into the reusable
/// `grad` buffer. Returns `(shard, lr, momentum)`.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed `PushShard`.
pub fn decode_push_shard_into(
    payload: &[u8],
    grad: &mut Vec<f32>,
) -> Result<(u32, f64, f64), WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::PUSH_SHARD => {}
        other => return Err(WireError::UnknownOpcode(other)),
    }
    let shard = c.u32()?;
    let lr = c.f64()?;
    let momentum = c.f64()?;
    c.f32s_into(grad)?;
    c.finish()?;
    Ok((shard, lr, momentum))
}

/// Decodes a `PushShardSparse` payload, reading the segment list and the
/// values into the reusable buffers. Returns `(shard, lr, momentum)`.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed
/// `PushShardSparse` (segment *semantics* — ordering, bounds — are checked
/// at apply time, not here; the codec only moves bytes).
pub fn decode_push_shard_sparse_into(
    payload: &[u8],
    indices: &mut Vec<(u32, u32)>,
    rows: &mut Vec<f32>,
) -> Result<(u32, f64, f64), WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::PUSH_SHARD_SPARSE => {}
        other => return Err(WireError::UnknownOpcode(other)),
    }
    let shard = c.u32()?;
    let lr = c.f64()?;
    let momentum = c.f64()?;
    c.segments_into(indices)?;
    c.f32s_into(rows)?;
    c.finish()?;
    Ok((shard, lr, momentum))
}

/// Decodes a `Pulled` reply straight into the caller's slices — the
/// zero-allocation pull path: the router points these at the worker's flat
/// buffer, so the decode is the single parameter copy of the pull.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed `Pulled`
/// reply or its run lengths differ from the slice lengths.
pub fn decode_pulled_into(
    payload: &[u8],
    params_out: &mut [f32],
    clocks_out: &mut [u64],
) -> Result<(), WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::PULLED => {}
        other => return Err(WireError::UnexpectedReply(other)),
    }
    c.f32s_into_slice(params_out)?;
    c.u64s_into_slice(clocks_out)?;
    c.finish()
}

/// Decodes a `SnapshotData` reply straight into an exact-length slice.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed
/// `SnapshotData` reply of exactly `out.len()` values.
pub fn decode_snapshot_into(payload: &[u8], out: &mut [f32]) -> Result<(), WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::SNAPSHOT_DATA => {}
        other => return Err(WireError::UnexpectedReply(other)),
    }
    c.f32s_into_slice(out)?;
    c.finish()
}

/// Checks that a reply payload is exactly the bodyless `expected` opcode.
///
/// # Errors
///
/// Returns a [`WireError`] on any other payload.
pub fn expect_bodyless(payload: &[u8], expected: u8) -> Result<(), WireError> {
    let mut c = Cursor::new(payload);
    let got = c.u8()?;
    if got != expected {
        return Err(WireError::UnexpectedReply(got));
    }
    c.finish()
}

/// Decodes a `Finite` reply.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed `Finite`.
pub fn decode_finite(payload: &[u8]) -> Result<bool, WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::FINITE => {}
        other => return Err(WireError::UnexpectedReply(other)),
    }
    let finite = c.u8()? != 0;
    c.finish()?;
    Ok(finite)
}

/// Decodes a `PushAck` reply.
///
/// # Errors
///
/// Returns a [`WireError`] if the payload is not a well-formed `PushAck`.
pub fn decode_push_ack(payload: &[u8]) -> Result<u64, WireError> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        op::PUSH_ACK => {}
        other => return Err(WireError::UnexpectedReply(other)),
    }
    let clock = c.u64()?;
    c.finish()?;
    Ok(clock)
}

impl Request {
    /// Decodes a request payload into its owned form.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            op::PUSH_SHARD => {
                let shard = c.u32()?;
                let lr = c.f64()?;
                let momentum = c.f64()?;
                let mut grad = Vec::new();
                c.f32s_into(&mut grad)?;
                Request::PushShard {
                    shard,
                    lr,
                    momentum,
                    grad,
                }
            }
            op::PUSH_SHARD_SPARSE => {
                let shard = c.u32()?;
                let lr = c.f64()?;
                let momentum = c.f64()?;
                let mut indices = Vec::new();
                c.segments_into(&mut indices)?;
                let mut rows = Vec::new();
                c.f32s_into(&mut rows)?;
                Request::PushShardSparse {
                    shard,
                    lr,
                    momentum,
                    indices,
                    rows,
                }
            }
            op::PULL_COMMITTED => Request::PullCommitted,
            op::SYNC_ROUND => Request::SyncRound,
            op::DRAIN => Request::Drain,
            op::SNAPSHOT => Request::Snapshot {
                velocity: c.u8()? != 0,
            },
            op::RESTORE => {
                let mut params = Vec::new();
                c.f32s_into(&mut params)?;
                let mut velocity = Vec::new();
                c.f32s_into(&mut velocity)?;
                Request::Restore { params, velocity }
            }
            op::RESET_VELOCITY => Request::ResetVelocity,
            op::CHECK_FINITE => Request::CheckFinite,
            op::HELLO => Request::Hello,
            op::STATS => Request::Stats,
            op::SHUTDOWN => Request::Shutdown,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Reply {
    /// Decodes a reply payload into its owned form.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed.
    pub fn decode(payload: &[u8]) -> Result<Reply, WireError> {
        let mut c = Cursor::new(payload);
        let reply = match c.u8()? {
            op::PUSH_ACK => Reply::PushAck {
                prev_clock: c.u64()?,
            },
            op::PULLED => {
                let mut params = Vec::new();
                c.f32s_into(&mut params)?;
                let n = c.u32()? as usize;
                let bytes = c.take(n.checked_mul(8).ok_or(WireError::Truncated)?)?;
                let clocks = bytes
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .collect();
                Reply::Pulled { params, clocks }
            }
            op::SYNCED => Reply::Synced,
            op::SNAPSHOT_DATA => {
                let mut data = Vec::new();
                c.f32s_into(&mut data)?;
                Reply::SnapshotData { data }
            }
            op::OK => Reply::Ok,
            op::FINITE => Reply::Finite {
                finite: c.u8()? != 0,
            },
            op::INFO => Reply::Info(ServerInfo {
                nonce: c.u64()?,
                server: c.u32()?,
                first_shard: c.u32()?,
                shard_count: c.u32()?,
                param_offset: c.u64()?,
                param_len: c.u64()?,
            }),
            // The dedicated decoder consumes the whole payload (including
            // the trailing-bytes check), so delegate instead of re-parsing.
            op::STATS_DATA => return decode_stats_snapshot(payload).map(Reply::Stats),
            other => return Err(WireError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(reply)
    }
}

// ----------------------------------------------------------------- framing

/// Reads one length-prefixed frame from `r` into `buf` (resized in place).
/// Returns `Ok(false)` on clean EOF at a frame boundary — how a TCP handler
/// observes its client hanging up.
///
/// # Errors
///
/// Propagates I/O errors; an oversize length prefix surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl std::io::Read, buf: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    // EOF before the first length byte is a clean close; EOF mid-frame is
    // an error.
    match r.read(&mut len_bytes[..1])? {
        0 => return Ok(false),
        _ => r.read_exact(&mut len_bytes[1..])?,
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::Oversize(len),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Overwrites `frame` with `[len][payload]` framing for `payload`. Kept as
/// a copy (rather than encoding in place behind a reserved prefix) only on
/// cold paths; the hot conns reserve the prefix up front.
pub fn frame_payload(frame: &mut Vec<u8>, payload: &[u8]) {
    frame.clear();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
}

/// Patches the 4-byte length prefix of a buffer laid out as
/// `[placeholder][payload]` (the zero-copy framing the TCP conn uses:
/// encode the payload after a reserved prefix, then fix the prefix).
///
/// # Panics
///
/// Panics if `buf` is shorter than the prefix.
pub fn patch_frame_len(buf: &mut [u8]) {
    let len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&len.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shard_round_trips() {
        let req = Request::PushShard {
            shard: 3,
            lr: 0.05,
            momentum: 0.9,
            grad: vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0],
        };
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(Request::decode(&buf).unwrap(), req);
        // The streaming decoder agrees with the owned one.
        let mut grad = vec![9.9f32; 1];
        let (shard, lr, mu) = decode_push_shard_into(&buf, &mut grad).unwrap();
        assert_eq!((shard, lr, mu), (3, 0.05, 0.9));
        assert_eq!(grad, vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0]);
    }

    #[test]
    fn push_shard_sparse_round_trips() {
        let req = Request::PushShardSparse {
            shard: 2,
            lr: 0.25,
            momentum: 0.9,
            indices: vec![(4, 2), (10, 3)],
            rows: vec![1.0, -2.0, 0.5, f32::MIN_POSITIVE, -0.0],
        };
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(Request::decode(&buf).unwrap(), req);
        // The streaming decoder agrees with the owned one, reusing buffers.
        let mut indices = vec![(9u32, 9u32)];
        let mut rows = vec![9.9f32];
        let (shard, lr, mu) = decode_push_shard_sparse_into(&buf, &mut indices, &mut rows).unwrap();
        assert_eq!((shard, lr, mu), (2, 0.25, 0.9));
        assert_eq!(indices, vec![(4, 2), (10, 3)]);
        assert_eq!(rows.len(), 5);
        // The sparse frame is smaller than the dense frame it replaces
        // whenever the touched fraction is below 1 (here: 5 of 16 values).
        let mut dense = Vec::new();
        encode_push_shard(&mut dense, 2, 0.25, 0.9, &[0.0; 16]);
        assert!(buf.len() < dense.len(), "{} vs {}", buf.len(), dense.len());
        // Truncations fail loudly.
        for cut in [0, 1, 5, buf.len() - 1] {
            assert!(Request::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn pulled_decodes_into_slices() {
        let reply = Reply::Pulled {
            params: vec![0.5, 1.5, 2.5],
            clocks: vec![7, 9],
        };
        let mut buf = Vec::new();
        reply.encode(&mut buf);
        let mut params = [0.0f32; 3];
        let mut clocks = [0u64; 2];
        decode_pulled_into(&buf, &mut params, &mut clocks).unwrap();
        assert_eq!(params, [0.5, 1.5, 2.5]);
        assert_eq!(clocks, [7, 9]);
        // Length mismatches are corruption, not silent truncation.
        let mut short = [0.0f32; 2];
        assert!(decode_pulled_into(&buf, &mut short, &mut clocks).is_err());
    }

    #[test]
    fn nan_gradients_survive_byte_exactly() {
        let weird = f32::from_bits(0x7fc0_dead); // a payloaded NaN
        let req = Request::PushShard {
            shard: 0,
            lr: f64::NAN,
            momentum: -0.0,
            grad: vec![weird, f32::NEG_INFINITY],
        };
        let mut a = Vec::new();
        req.encode(&mut a);
        let back = Request::decode(&a).unwrap();
        let mut b = Vec::new();
        back.encode(&mut b);
        assert_eq!(a, b, "re-encode must be byte-exact");
        match back {
            Request::PushShard { grad, .. } => {
                assert_eq!(grad[0].to_bits(), weird.to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut buf = Vec::new();
        Request::PushShard {
            shard: 1,
            lr: 0.1,
            momentum: 0.0,
            grad: vec![1.0; 8],
        }
        .encode(&mut buf);
        for cut in [0, 1, 4, buf.len() - 1] {
            assert!(
                Request::decode(&buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        buf.push(0);
        assert_eq!(
            Request::decode(&buf),
            Err(WireError::TrailingBytes(1)),
            "trailing byte must fail"
        );
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert_eq!(
            Request::decode(&[0x55]),
            Err(WireError::UnknownOpcode(0x55))
        );
        assert_eq!(Reply::decode(&[0x55]), Err(WireError::UnknownOpcode(0x55)));
        assert_eq!(
            decode_push_ack(&[op::OK]),
            Err(WireError::UnexpectedReply(op::OK))
        );
    }

    #[test]
    fn stream_framing_round_trips() {
        let mut wire = Vec::new();
        let mut frame = Vec::new();
        for payload in [&b"abc"[..], &[][..], &[op::SYNCED][..]] {
            frame_payload(&mut frame, payload);
            wire.extend_from_slice(&frame);
        }
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"abc");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert!(buf.is_empty());
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, [op::SYNCED]);
        // Clean EOF at a boundary.
        assert!(!read_frame(&mut r, &mut buf).unwrap());
    }

    #[test]
    fn oversize_frames_are_rejected() {
        let wire = u32::MAX.to_le_bytes();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        let err = read_frame(&mut r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn sequenced_prefix_round_trips() {
        let mut buf = Vec::new();
        encode_sequenced_prefix(&mut buf, 0xdead_beef_cafe, 42);
        encode_push_shard(&mut buf, 3, 0.05, 0.9, &[1.0, -2.0]);
        let (client, seq, inner) = decode_sequenced_prefix(&buf).unwrap();
        assert_eq!(client, 0xdead_beef_cafe);
        assert_eq!(seq, 42);
        let mut grad = Vec::new();
        let (shard, lr, mu) = decode_push_shard_into(inner, &mut grad).unwrap();
        assert_eq!((shard, lr, mu), (3, 0.05, 0.9));
        assert_eq!(grad, vec![1.0, -2.0]);
        // An empty inner payload is the dispatcher's problem, not ours.
        let mut bare = Vec::new();
        encode_sequenced_prefix(&mut bare, 1, 2);
        let (_, _, inner) = decode_sequenced_prefix(&bare).unwrap();
        assert!(inner.is_empty());
    }

    #[test]
    fn sequenced_prefix_rejects_bad_headers() {
        let mut buf = Vec::new();
        encode_sequenced_prefix(&mut buf, 7, 9);
        for cut in 0..buf.len() {
            assert!(decode_sequenced_prefix(&buf[..cut]).is_err(), "cut {cut}");
        }
        // Wrong opcode.
        assert_eq!(
            decode_sequenced_prefix(&[op::PUSH_SHARD]),
            Err(WireError::UnknownOpcode(op::PUSH_SHARD))
        );
        // Unsupported version byte.
        let mut bad = buf.clone();
        bad[1] = SEQ_WIRE_VERSION + 1;
        assert_eq!(
            decode_sequenced_prefix(&bad),
            Err(WireError::BadVersion(SEQ_WIRE_VERSION + 1))
        );
    }

    #[test]
    fn server_info_round_trips() {
        let info = ServerInfo {
            nonce: 0x1234_5678_9abc_def0,
            server: 3,
            first_shard: 12,
            shard_count: 4,
            param_offset: 1024,
            param_len: 768,
        };
        let mut buf = Vec::new();
        Reply::Info(info).encode(&mut buf);
        assert_eq!(decode_server_info(&buf).unwrap(), info);
        assert_eq!(Reply::decode(&buf).unwrap(), Reply::Info(info));
        // Hello is bodyless and round-trips through the owned enum.
        let mut req = Vec::new();
        Request::Hello.encode(&mut req);
        assert_eq!(req, [op::HELLO]);
        assert_eq!(Request::decode(&req).unwrap(), Request::Hello);
        // Truncations fail loudly.
        for cut in 0..buf.len() {
            assert!(decode_server_info(&buf[..cut]).is_err(), "cut {cut}");
        }
        // Wrong opcode is an UnexpectedReply for the dedicated decoder.
        assert_eq!(
            decode_server_info(&[op::OK]),
            Err(WireError::UnexpectedReply(op::OK))
        );
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let mut stats = ServerStatsSnapshot {
            server: 2,
            shard_apply_ns: vec![120, 0, 77],
            shard_applies: vec![3, 0, 1],
            bytes_in: 4096,
            bytes_out: 512,
            dedup_hits: 5,
            ..ServerStatsSnapshot::default()
        };
        stats.requests[op::PUSH_SHARD as usize] = 40;
        stats.requests[op::PULL_COMMITTED as usize] = 7;
        stats.apply_ns.count = 4;
        stats.apply_ns.sum = 197;
        stats.apply_ns.max = 120;
        stats.apply_ns.buckets[7] = 4;
        let mut buf = Vec::new();
        Reply::Stats(stats.clone()).encode(&mut buf);
        assert_eq!(decode_stats_snapshot(&buf).unwrap(), stats);
        assert_eq!(Reply::decode(&buf).unwrap(), Reply::Stats(stats.clone()));
        // Re-encode is byte-exact.
        let mut again = Vec::new();
        Reply::decode(&buf).unwrap().encode(&mut again);
        assert_eq!(buf, again);
        // The request side is bodyless.
        let mut req = Vec::new();
        Request::Stats.encode(&mut req);
        assert_eq!(req, [op::STATS]);
        assert_eq!(Request::decode(&req).unwrap(), Request::Stats);
        // Truncations fail loudly.
        for cut in 0..buf.len() {
            assert!(decode_stats_snapshot(&buf[..cut]).is_err(), "cut {cut}");
        }
        // Wrong opcode is an UnexpectedReply for the dedicated decoder.
        assert_eq!(
            decode_stats_snapshot(&[op::OK]),
            Err(WireError::UnexpectedReply(op::OK))
        );
        // Mismatched per-shard vector lengths are corruption.
        let bad = ServerStatsSnapshot {
            shard_apply_ns: vec![1, 2],
            shard_applies: vec![1],
            ..ServerStatsSnapshot::default()
        };
        let mut buf = Vec::new();
        encode_stats_snapshot(&mut buf, &bad);
        assert_eq!(decode_stats_snapshot(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn patched_prefix_matches_copy_framing() {
        let payload = [op::SYNC_ROUND, 1, 2, 3];
        let mut copied = Vec::new();
        frame_payload(&mut copied, &payload);
        let mut patched = vec![0u8; 4];
        patched.extend_from_slice(&payload);
        patch_frame_len(&mut patched);
        assert_eq!(copied, patched);
    }
}
