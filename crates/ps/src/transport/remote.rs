//! The cross-process TCP backend: a *client-only* transport over a fixed
//! list of server addresses.
//!
//! The in-process backends ([`crate::transport::channel`],
//! [`crate::transport::tcp::TcpTransport`]) own their server instances and
//! their serving threads; this one owns nothing — the servers are separate
//! OS processes (`ps-serve`), each running its own
//! [`crate::transport::tcp::TcpServerHost`], and all this transport holds
//! is where to dial them. Consequently [`Transport::kill_server`] /
//! [`Transport::revive_server`] stay unsupported: killing a remote server
//! is `SIGKILL` on its process and reviving it is respawning the process,
//! both of which belong to the cluster harness. The client-side recovery
//! half — detecting the respawn and replaying a snapshot — is
//! [`crate::supervisor::ServerSupervisor::heal_respawned`].

use std::io;
use std::net::SocketAddr;

use super::tcp::TcpConn;
use super::{Conn, Transport};

/// A transport that reaches `ps-serve` processes over TCP by address.
#[derive(Debug, Clone)]
pub struct RemoteTcpTransport {
    addrs: Vec<SocketAddr>,
}

impl RemoteTcpTransport {
    /// A transport dialing `addrs[s]` for server `s`. No I/O happens here;
    /// connections open lazily per worker, with the usual retry policy on
    /// top, so constructing the transport before the servers are up is
    /// fine.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        RemoteTcpTransport { addrs }
    }

    /// The configured server addresses.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }
}

impl Transport for RemoteTcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn server_count(&self) -> usize {
        self.addrs.len()
    }

    fn connect(&self, server: usize) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(TcpConn::connect(self.addrs[server])?))
    }
}
