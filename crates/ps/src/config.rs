//! Training-segment configuration.

use std::time::Duration;

use crate::transport::faulty::FaultPlan;

/// Client-side resilience knobs for the wire transports: how long one
/// request/reply round trip may block, and how a failed operation is
/// retried.
///
/// Retries use exponential backoff with deterministic jitter:
/// attempt `k` sleeps `min(backoff_base_ms << k, backoff_max_ms)` plus a
/// jitter drawn from a process-local stream. Mutating requests are
/// re-sent under a sequence header ([`crate::transport::wire::op::SEQUENCED`])
/// so a retry whose original actually executed is applied at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-operation timeout, milliseconds. One round trip blocking longer
    /// than this counts as a failed attempt.
    pub op_timeout_ms: u64,
    /// Retries after the initial attempt before the operation fails with
    /// [`crate::PsError::RetriesExhausted`].
    pub max_retries: u32,
    /// First backoff sleep, milliseconds; doubles per subsequent attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            op_timeout_ms: 5_000,
            max_retries: 4,
            backoff_base_ms: 5,
            backoff_max_ms: 200,
        }
    }
}

/// How workers reach the parameter-server tier.
///
/// `InProcess` is the PR 2/3 fast path: servers are plain structs and a
/// "push" is a routed method call, so the transport cost is zero by
/// construction. `Channel` and `Tcp` put every push, pull, and sync round
/// through the binary wire protocol of [`crate::transport::wire`] — the
/// boundary that makes the network cost of the paper's BSP/ASP tradeoff
/// real and measurable ([`crate::profiler::TransportStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Direct method calls on in-process stores (the default).
    #[default]
    InProcess,
    /// Encoded frames over in-memory queues; one event-loop thread per
    /// server drains its request queue.
    Channel,
    /// Encoded frames over loopback TCP; one listener per server, blocking
    /// I/O, one connection per worker.
    Tcp,
}

impl TransportKind {
    /// Short lowercase name, for reports and bench axes.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::InProcess => "inprocess",
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the parameter-server tier is laid out across server instances.
///
/// With `servers == 1` the data plane is the single in-process
/// [`crate::ShardedStore`] (the PR 2 fast path). With `servers >= 2` the
/// shards are partitioned across that many [`crate::PsServer`] instances
/// behind a [`crate::ShardRouter`], and synchronization becomes OSP-style
/// two-stage: pushes apply immediately on the owning server (stage 1), and
/// a periodic cross-server reconciliation round publishes the owners' shard
/// deltas into the committed view that workers pull (stage 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerTopology {
    /// Number of parameter-server instances. Clamped to the shard count at
    /// construction (a server with no shards would be idle).
    pub servers: usize,
    /// Stage-2 reconciliation period, in completed pushes: after every
    /// `sync_every` pushes the next pushing worker runs a reconciliation
    /// round. `1` commits after every push (tightest cross-server bound);
    /// BSP ignores this and reconciles at every barrier round.
    pub sync_every: u64,
    /// How workers reach the servers. With [`TransportKind::InProcess`] a
    /// single-server topology gets the direct-store fast path; any other
    /// kind puts the tier (even one server) behind the wire protocol, so
    /// pulls always read the committed view.
    pub transport: TransportKind,
    /// Client-side timeout/retry/backoff policy for the wire transports
    /// (ignored in-process — a method call cannot time out).
    pub retry: RetryPolicy,
    /// Optional fault-injection plan: when set on a wire transport, the
    /// backend is wrapped in a [`crate::transport::FaultyTransport`] and
    /// every connection is perturbed per the plan (chaos testing).
    pub faults: Option<FaultPlan>,
}

impl ServerTopology {
    /// Single-server topology (the default): no stage-2 rounds needed.
    pub fn single() -> Self {
        ServerTopology {
            servers: 1,
            sync_every: 1,
            transport: TransportKind::InProcess,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Multi-server topology with `servers` instances reconciling every
    /// `sync_every` pushes.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `sync_every == 0`.
    pub fn new(servers: usize, sync_every: u64) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(sync_every > 0, "sync_every must be positive");
        ServerTopology {
            servers,
            sync_every,
            transport: TransportKind::InProcess,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Selects the worker↔server transport backend.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the client-side timeout/retry policy for the wire transports.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a fault-injection plan on the wire transport.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("topology needs at least one server".into());
        }
        if self.sync_every == 0 {
            return Err("stage-2 sync period must be positive".into());
        }
        Ok(())
    }
}

impl Default for ServerTopology {
    fn default() -> Self {
        ServerTopology::single()
    }
}

/// Configuration for the parameter-server trainer.
///
/// The Sync-Switch configuration policy mutates `learning_rate`,
/// `per_worker_batch`, and `momentum` between segments when the protocol
/// switches; `straggler_delay` injects transient slowness into chosen
/// workers (the paper emulates stragglers with added network latency).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of worker threads (the paper collocates one PS per worker;
    /// here shards play the PS role).
    pub workers: usize,
    /// Per-worker mini-batch size.
    pub per_worker_batch: usize,
    /// Learning rate applied at the parameter store.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Number of parameter shards (defaults to `workers`, mirroring the
    /// paper's equal PS/worker split).
    pub shards: usize,
    /// Parameter-server tier layout (defaults to a single server).
    pub topology: ServerTopology,
    /// Per-worker artificial delay injected before every gradient push;
    /// `None` entries are fast workers.
    pub straggler_delay: Vec<Option<Duration>>,
    /// Workers excluded from this segment (elastic policy evictions).
    pub excluded_workers: Vec<usize>,
    /// Whether asynchronous pushes may use the sparse path when the model
    /// reports sparse gradients (embedding workloads): only the touched
    /// rows are shipped per shard, numerically identical to the dense push
    /// of the same rows scattered into a zero gradient. Disable to force
    /// dense pushes everywhere — the control arm of the sparse-vs-dense
    /// wire-byte comparisons. BSP ignores this (barrier aggregation is
    /// inherently dense).
    pub sparse_push: bool,
    /// Whether the trainer carries a telemetry bus (metrics registry +
    /// event tracer) for this segment. On by default — recording is a
    /// handful of relaxed atomic ops per step, and the overhead gate in the
    /// bench suite holds it under 5%. Disable for the control arm of that
    /// comparison.
    pub telemetry: bool,
    /// Base seed for batch sampling (combined with worker id and step).
    pub seed: u64,
    /// Abort the segment with [`crate::PsError::Diverged`] when a worker
    /// observes a loss above this threshold or any non-finite value.
    pub divergence_loss_threshold: f32,
}

impl TrainerConfig {
    /// Creates a configuration with `workers` workers and sensible defaults
    /// (one shard per worker, no stragglers, seed 0).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `per_worker_batch == 0`.
    pub fn new(workers: usize, per_worker_batch: usize, learning_rate: f64, momentum: f64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(per_worker_batch > 0, "batch must be positive");
        TrainerConfig {
            workers,
            per_worker_batch,
            learning_rate,
            momentum,
            shards: workers,
            topology: ServerTopology::single(),
            straggler_delay: vec![None; workers],
            excluded_workers: Vec::new(),
            sparse_push: true,
            telemetry: true,
            seed: 0,
            divergence_loss_threshold: 1e4,
        }
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the sparse push path (enabled by default).
    pub fn with_sparse_push(mut self, sparse_push: bool) -> Self {
        self.sparse_push = sparse_push;
        self
    }

    /// Enables or disables the telemetry bus (enabled by default).
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the parameter-server tier layout.
    pub fn with_topology(mut self, topology: ServerTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Marks `worker` as a straggler with the given per-step delay.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn with_straggler(mut self, worker: usize, delay: Duration) -> Self {
        assert!(worker < self.workers, "worker {worker} out of range");
        self.straggler_delay[worker] = Some(delay);
        self
    }

    /// Clears all injected stragglers.
    pub fn clear_stragglers(&mut self) {
        self.straggler_delay.iter_mut().for_each(|d| *d = None);
    }

    /// The worker indices that actually participate in a segment.
    pub fn active_workers(&self) -> Vec<usize> {
        (0..self.workers)
            .filter(|w| !self.excluded_workers.contains(w))
            .collect()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        if self.active_workers().is_empty() {
            return Err("all workers excluded".into());
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        self.topology.validate()?;
        if self.straggler_delay.len() != self.workers {
            return Err(format!(
                "straggler_delay has {} entries for {} workers",
                self.straggler_delay.len(),
                self.workers
            ));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err("learning rate must be positive".into());
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err("momentum must be in [0,1)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let cfg = TrainerConfig::new(4, 32, 0.1, 0.9);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.active_workers(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sparse_push_defaults_on_and_toggles() {
        let cfg = TrainerConfig::new(2, 8, 0.1, 0.9);
        assert!(cfg.sparse_push);
        let cfg = cfg.with_sparse_push(false);
        assert!(!cfg.sparse_push);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn telemetry_defaults_on_and_toggles() {
        let cfg = TrainerConfig::new(2, 8, 0.1, 0.9);
        assert!(cfg.telemetry);
        let cfg = cfg.with_telemetry(false);
        assert!(!cfg.telemetry);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn straggler_builder() {
        let cfg = TrainerConfig::new(3, 8, 0.1, 0.9).with_straggler(1, Duration::from_millis(5));
        assert!(cfg.straggler_delay[1].is_some());
        assert!(cfg.straggler_delay[0].is_none());
    }

    #[test]
    fn exclusion_shrinks_active_set() {
        let mut cfg = TrainerConfig::new(4, 8, 0.1, 0.9);
        cfg.excluded_workers = vec![2];
        assert_eq!(cfg.active_workers(), vec![0, 1, 3]);
        cfg.excluded_workers = vec![0, 1, 2, 3];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn transport_defaults_in_process_and_builds() {
        assert_eq!(ServerTopology::single().transport, TransportKind::InProcess);
        assert_eq!(
            ServerTopology::new(2, 4).transport,
            TransportKind::InProcess
        );
        let t = ServerTopology::new(2, 4).with_transport(TransportKind::Tcp);
        assert_eq!(t.transport, TransportKind::Tcp);
        assert!(t.validate().is_ok());
        // Names are the stable axis labels of the bench JSON.
        assert_eq!(TransportKind::InProcess.to_string(), "inprocess");
        assert_eq!(TransportKind::Channel.to_string(), "channel");
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
    }

    #[test]
    fn topology_defaults_and_validation() {
        let cfg = TrainerConfig::new(4, 8, 0.1, 0.9);
        assert_eq!(cfg.topology, ServerTopology::single());
        let cfg = cfg.with_topology(ServerTopology::new(2, 4));
        assert_eq!(cfg.topology.servers, 2);
        assert_eq!(cfg.topology.sync_every, 4);
        assert!(cfg.validate().is_ok());
        let mut bad = cfg.clone();
        bad.topology.servers = 0;
        assert!(bad.validate().is_err());
        let mut bad = cfg;
        bad.topology.sync_every = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn retry_and_fault_builders() {
        let t = ServerTopology::new(2, 4)
            .with_retry(RetryPolicy {
                op_timeout_ms: 100,
                max_retries: 2,
                backoff_base_ms: 1,
                backoff_max_ms: 10,
            })
            .with_faults(FaultPlan::seeded(9));
        assert_eq!(t.retry.max_retries, 2);
        assert_eq!(t.faults.unwrap().seed, 9);
        assert!(t.validate().is_ok());
        // Defaults: no faults, a positive retry budget.
        let d = ServerTopology::single();
        assert!(d.faults.is_none());
        assert!(d.retry.max_retries > 0);
        assert!(d.retry.op_timeout_ms > 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = TrainerConfig::new(2, 8, 0.1, 0.9);
        cfg.momentum = 1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = TrainerConfig::new(2, 8, 0.1, 0.9);
        cfg.learning_rate = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = TrainerConfig::new(2, 8, 0.1, 0.9);
        cfg.straggler_delay.pop();
        assert!(cfg.validate().is_err());
    }
}
