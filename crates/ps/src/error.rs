//! Error types for the parameter-server runtime.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the parameter-server training engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PsError {
    /// The training configuration is inconsistent (e.g. zero workers).
    InvalidConfig(String),
    /// Training produced a non-finite loss or parameter — the divergence
    /// failure mode the paper observes for ASP in experiment setup 3.
    Diverged {
        /// Global step at which divergence was detected.
        step: u64,
    },
    /// A worker thread panicked.
    WorkerPanicked {
        /// Index of the worker whose thread died.
        worker: usize,
    },
    /// A checkpoint does not match the model it is being restored into.
    CheckpointMismatch(String),
    /// An API that needs the single in-process parameter store was called
    /// on a trainer whose data plane is a multi-server or transport-backed
    /// tier (use the router accessors or the snapshot APIs instead).
    NoSingleStore {
        /// Number of servers in the tier that was actually configured.
        servers: usize,
    },
    /// A wire operation exceeded its per-op timeout on every retry.
    Timeout {
        /// Server the operation was addressed to.
        server: usize,
    },
    /// A server's connection broke and could not be re-established.
    ConnLost {
        /// Server the connection belonged to.
        server: usize,
    },
    /// A wire operation kept failing after exhausting its retry budget.
    RetriesExhausted {
        /// Server the operation was addressed to.
        server: usize,
        /// Attempts made (initial send plus retries).
        attempts: u32,
    },
}

impl fmt::Display for PsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsError::InvalidConfig(msg) => write!(f, "invalid training configuration: {msg}"),
            PsError::Diverged { step } => {
                write!(f, "training diverged at step {step} (non-finite loss)")
            }
            PsError::WorkerPanicked { worker } => write!(f, "worker {worker} panicked"),
            PsError::CheckpointMismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            PsError::NoSingleStore { servers } => write!(
                f,
                "no single parameter store: the data plane is a {servers}-server tier \
                 behind a router/transport (use router()/net_router() or the snapshot APIs)"
            ),
            PsError::Timeout { server } => {
                write!(f, "wire operation to server {server} timed out")
            }
            PsError::ConnLost { server } => {
                write!(
                    f,
                    "connection to server {server} lost and not re-established"
                )
            }
            PsError::RetriesExhausted { server, attempts } => write!(
                f,
                "wire operation to server {server} failed after {attempts} attempts"
            ),
        }
    }
}

impl Error for PsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = PsError::Diverged { step: 42 };
        assert_eq!(
            e.to_string(),
            "training diverged at step 42 (non-finite loss)"
        );
        let e = PsError::InvalidConfig("zero workers".into());
        assert!(e.to_string().contains("zero workers"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PsError>();
    }
}
