//! Error types for the parameter-server runtime.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the parameter-server training engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PsError {
    /// The training configuration is inconsistent (e.g. zero workers).
    InvalidConfig(String),
    /// Training produced a non-finite loss or parameter — the divergence
    /// failure mode the paper observes for ASP in experiment setup 3.
    Diverged {
        /// Global step at which divergence was detected.
        step: u64,
    },
    /// A worker thread panicked.
    WorkerPanicked {
        /// Index of the worker whose thread died.
        worker: usize,
    },
    /// A checkpoint does not match the model it is being restored into.
    CheckpointMismatch(String),
}

impl fmt::Display for PsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsError::InvalidConfig(msg) => write!(f, "invalid training configuration: {msg}"),
            PsError::Diverged { step } => {
                write!(f, "training diverged at step {step} (non-finite loss)")
            }
            PsError::WorkerPanicked { worker } => write!(f, "worker {worker} panicked"),
            PsError::CheckpointMismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl Error for PsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = PsError::Diverged { step: 42 };
        assert_eq!(
            e.to_string(),
            "training diverged at step 42 (non-finite loss)"
        );
        let e = PsError::InvalidConfig("zero workers".into());
        assert!(e.to_string().contains("zero workers"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PsError>();
    }
}
