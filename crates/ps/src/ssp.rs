//! Stale Synchronous Parallel on the real parameter server — an extension
//! substrate (the paper notes Sync-Switch "is agnostic to the underlying
//! synchronization protocols", e.g. switching from SSP to ASP).
//!
//! SSP with bound `s`: updates apply asynchronously like ASP, but a worker
//! may run at most `s` iterations ahead of the slowest active worker; it
//! blocks at the gate otherwise. `s = 0` forces lock-step iterations;
//! large `s` recovers ASP.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use sync_switch_workloads::SyncProtocol;

use crate::engine::{SegmentReport, Trainer};
use crate::error::PsError;
use crate::profiler::{ServerShardStaleness, StalenessHistogram, WorkerProfile};

/// Progress gate shared by SSP workers.
struct SspGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    iterations: Vec<u64>,
    finished: Vec<bool>,
}

impl GateState {
    fn floor(&self) -> u64 {
        self.iterations
            .iter()
            .zip(&self.finished)
            .filter(|&(_, &done)| !done)
            .map(|(&it, _)| it)
            .min()
            .unwrap_or(u64::MAX)
    }
}

impl Trainer {
    /// Runs `steps` global steps under SSP with staleness bound `bound`.
    ///
    /// The returned report carries `SyncProtocol::Asp` as its protocol tag
    /// (SSP is asynchronous-with-a-leash; the core policy enum stays
    /// BSP/ASP per the paper), with the gate's effect visible in the wall
    /// time and the measured staleness histogram.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::Diverged`] on a non-finite or above-threshold
    /// loss, as with the other protocols.
    pub fn run_ssp_segment(&mut self, bound: u64, steps: u64) -> Result<SegmentReport, PsError> {
        if steps == 0 {
            return self.run_segment(SyncProtocol::Asp, 0);
        }
        // SSP is asynchronous-with-a-leash: the trainer's recorded protocol
        // carries the same ASP tag the returned report does.
        self.set_protocol(SyncProtocol::Asp);
        let cfg = self.config().clone();
        let active = cfg.active_workers();
        if active.is_empty() {
            return Err(PsError::InvalidConfig("all workers excluded".into()));
        }
        let workers = cfg.workers;
        let gate = Arc::new(SspGate {
            state: Mutex::new(GateState {
                iterations: vec![0; workers],
                // Workers not participating are "finished" from the start
                // so they never hold the floor down.
                finished: (0..workers).map(|w| !active.contains(&w)).collect(),
            }),
            cv: Condvar::new(),
        });
        let abort = Arc::new(AtomicBool::new(false));
        let diverged_at = Arc::new(AtomicU64::new(u64::MAX));
        let claimed = Arc::new(AtomicU64::new(0));
        let port = self.port();
        let base_step = self.global_step();
        let n_shards = port.shard_count();
        let n_servers = port.server_count();
        let rounds_before = self.sync_rounds();
        let wire_before = self.transport_stats();
        let telemetry = self.telemetry().cloned();

        let start = Instant::now();
        let results: Vec<crate::engine::WorkerResult> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(active.len());
            for &worker in &active {
                let gate = Arc::clone(&gate);
                let abort = Arc::clone(&abort);
                let diverged_at = Arc::clone(&diverged_at);
                let claimed = Arc::clone(&claimed);
                let port = port.clone();
                let shard = self.shard(worker);
                let mut model = self.model_template().clone();
                let delay = cfg.straggler_delay[worker];
                let batch = cfg.per_worker_batch;
                let (lr, mu) = (cfg.learning_rate, cfg.momentum);
                let seed = cfg.seed;
                let threshold = cfg.divergence_loss_threshold;
                let sparse_enabled = cfg.sparse_push;
                let telemetry = telemetry.clone();
                handles.push(scope.spawn(move || {
                    let mut profile = WorkerProfile::default();
                    let mut hist = StalenessHistogram::new();
                    let mut shard_hist = ServerShardStaleness::new(n_servers, n_shards);
                    let mut buf = port.new_buffer();
                    let mut scratch = crate::engine::SparseScratch::default();
                    let mut wt = telemetry.as_ref().map(crate::engine::WorkerTelemetry::new);
                    let mut my_iter = 0u64;
                    // First-step start for the wall-clock throughput span —
                    // under SSP the wall rate absorbs the gate waits the
                    // busy rate hides.
                    let mut wall_start: Option<Instant> = None;
                    loop {
                        // Relaxed: latest-wins flag; diverged_at is
                        // read after thread join, which synchronizes.
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        // Gate: wait while more than `bound` ahead.
                        // Because every push bumps every shard clock
                        // exactly once, capping the iteration lead caps
                        // the number of pushes — and therefore the
                        // staleness — that any *shard* can accumulate
                        // between this worker's pull and its push: a
                        // peer enters the window no more than `bound`
                        // iterations behind and leaves it no more than
                        // `bound + 1` ahead, so each of the other
                        // workers lands at most 2·bound + 2 applies per
                        // shard in the window. The abort flag is
                        // re-read under the gate mutex, so an aborter
                        // that stores the flag and then notifies under
                        // this mutex cannot lose the wakeup.
                        let wait_ns = wt.as_ref().map_or(0, |w| w.now_ns());
                        {
                            let mut state = gate.state.lock();
                            while !abort.load(Ordering::Relaxed)
                                && my_iter > state.floor().saturating_add(bound)
                            {
                                gate.cv.wait(&mut state);
                            }
                        }
                        // The SSP gate is this protocol's barrier: trace the
                        // park time under the same span kind so straggler
                        // back-pressure is visible in one place.
                        if let Some(w) = wt.as_mut() {
                            w.barrier_wait(worker, wait_ns);
                        }
                        // Relaxed: pure ticket counter; atomicity alone
                        // guarantees unique step ids.
                        let s = claimed.fetch_add(1, Ordering::Relaxed);
                        if s >= steps {
                            let mut state = gate.state.lock();
                            state.finished[worker] = true;
                            gate.cv.notify_all();
                            break;
                        }
                        let t0 = Instant::now();
                        wall_start.get_or_insert(t0);
                        let step_ns = wt.as_ref().map_or(0, |w| w.now_ns());
                        port.pull_into(&mut buf);
                        model.set_params_flat(buf.params());
                        let mut rng = crate::engine::step_rng(seed, worker, base_step + s);
                        let (x, y) = shard.sample_batch(batch, &mut rng);
                        if let Some(d) = delay {
                            std::thread::sleep(d);
                        }
                        let (loss, grad) = model.loss_and_grad(&x, &y);
                        if !loss.is_finite() || loss > threshold {
                            // Relaxed: read back only after join; the
                            // lock/notify below publishes the flag to
                            // gate waiters via the mutex.
                            diverged_at.store(base_step + s, Ordering::Relaxed);
                            abort.store(true, Ordering::Relaxed);
                            let _state = gate.state.lock();
                            gate.cv.notify_all();
                            break;
                        }
                        // Shard-granular push with per-shard staleness
                        // measured against the pull-time shard clocks
                        // (shared with the ASP loop so both protocols
                        // measure identically — including the sparse path
                        // for embedding workloads).
                        let staleness = crate::engine::push_maybe_sparse(
                            &port,
                            &model,
                            &grad,
                            sparse_enabled,
                            &mut scratch,
                            &buf,
                            lr,
                            mu,
                            &mut shard_hist,
                        );
                        let step_time = t0.elapsed();
                        profile.step_durations.push(step_time);
                        profile.losses.push(loss);
                        hist.record(staleness);
                        if let Some(ws) = wall_start {
                            profile.wall_time = ws.elapsed();
                        }
                        if let Some(w) = wt.as_mut() {
                            w.staleness(staleness);
                            w.step(worker, base_step + s, step_ns, step_time);
                        }
                        my_iter += 1;
                        let mut state = gate.state.lock();
                        state.iterations[worker] = my_iter;
                        gate.cv.notify_all();
                    }
                    if let Some(w) = wt.as_mut() {
                        w.flush();
                    }
                    (worker, profile, hist, shard_hist)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("ssp worker panicked"))
                .collect()
        });
        let wall_time = start.elapsed();

        // Relaxed: the worker threads were joined by the scope above, and
        // joining synchronizes-with everything they wrote.
        let diverged = diverged_at.load(Ordering::Relaxed);
        if diverged != u64::MAX {
            return Err(PsError::Diverged { step: diverged });
        }

        let mut profiles = vec![WorkerProfile::default(); workers];
        let mut staleness = StalenessHistogram::new();
        let mut server_shard_staleness = ServerShardStaleness::new(n_servers, n_shards);
        let mut tail = Vec::new();
        for (worker, profile, hist, shard_hist) in results {
            staleness.merge(&hist);
            server_shard_staleness.merge(&shard_hist);
            tail.extend(profile.losses.iter().rev().take(4).copied());
            profiles[worker] = profile;
        }
        self.advance_global_step(steps);
        Ok(SegmentReport {
            protocol: SyncProtocol::Asp,
            steps,
            wall_time,
            worker_profiles: profiles,
            staleness,
            shard_staleness: server_shard_staleness.flatten(),
            server_shard_staleness,
            sync_rounds: self.sync_rounds() - rounds_before,
            transport: self.transport_stats().delta(&wire_before),
            finite: self.check_finite(),
            final_loss: if tail.is_empty() {
                0.0
            } else {
                tail.iter().sum::<f32>() / tail.len() as f32
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainerConfig;
    use std::time::Duration;
    use sync_switch_nn::{Dataset, Network};

    fn trainer(workers: usize, seed: u64) -> Trainer {
        let data = Dataset::gaussian_blobs(4, 80, 6, 0.35, seed);
        let (train, test) = data.split(0.25);
        Trainer::new(
            Network::mlp(6, &[12], 4, seed),
            train,
            test,
            TrainerConfig::new(workers, 6, 0.04, 0.9).with_seed(seed),
        )
    }

    #[test]
    fn ssp_completes_exact_steps() {
        let mut t = trainer(4, 1);
        let r = t.run_ssp_segment(2, 120).unwrap();
        assert_eq!(r.steps, 120);
        assert_eq!(t.global_step(), 120);
        assert_eq!(t.store().unwrap().version(), 120);
        let total: usize = r.worker_profiles.iter().map(|p| p.steps()).sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn bound_zero_enforces_lockstep_iterations() {
        let mut t = trainer(4, 2);
        let r = t.run_ssp_segment(0, 80).unwrap();
        // With bound 0 every worker completes the same iteration count
        // (within 1, for the final partial wave).
        let steps: Vec<usize> = r.worker_profiles.iter().map(|p| p.steps()).collect();
        let min = *steps.iter().min().unwrap();
        let max = *steps.iter().max().unwrap();
        assert!(max - min <= 1, "lock-step violated: {steps:?}");
    }

    #[test]
    fn tight_bound_throttles_fast_workers_under_straggler() {
        let mk = |bound: u64| {
            let data = Dataset::gaussian_blobs(4, 80, 6, 0.35, 3);
            let (train, test) = data.split(0.25);
            let cfg = TrainerConfig::new(3, 6, 0.04, 0.9)
                .with_seed(3)
                .with_straggler(0, Duration::from_millis(3));
            let mut t = Trainer::new(Network::mlp(6, &[12], 4, 3), train, test, cfg);
            t.run_ssp_segment(bound, 60).unwrap()
        };
        let tight = mk(1);
        let loose = mk(1_000);
        // Loose SSP ≈ ASP: fast workers take most steps; tight SSP forces
        // near-equal shares.
        let spread = |r: &SegmentReport| {
            let s: Vec<usize> = r.worker_profiles.iter().map(|p| p.steps()).collect();
            *s.iter().max().unwrap() as i64 - *s.iter().min().unwrap() as i64
        };
        assert!(
            spread(&tight) < spread(&loose),
            "tight {} vs loose {}",
            spread(&tight),
            spread(&loose)
        );
        assert!(tight.wall_time > loose.wall_time);
    }

    #[test]
    fn gate_bounds_per_shard_staleness() {
        let workers = 4u64;
        let bound = 1u64;
        let mut t = trainer(workers as usize, 6);
        let r = t.run_ssp_segment(bound, 120).unwrap();
        // One observation per shard per push.
        let shards = t.store().unwrap().shard_count() as u64;
        assert_eq!(r.shard_staleness.total(), 120 * shards);
        // The iteration gate caps per-shard staleness: each of the other
        // workers can land at most 2·bound + 2 applies on a shard between
        // this worker's pull of it and its push to it.
        let cap = (2 * bound + 2) * (workers - 1);
        let max = r.shard_staleness.max().unwrap();
        assert!(
            max <= cap,
            "per-shard staleness {max} exceeds gate cap {cap}"
        );
        // The global measurement obeys the same window.
        assert!(r.staleness.max().unwrap() <= cap);
    }

    #[test]
    fn stage2_bounds_cross_server_staleness() {
        // Multi-server SSP: the iteration gate *plus* the stage-2 period
        // cap per-shard staleness on every server. A pull reads a server's
        // committed view, which trails its live clock by at most the pushes
        // since the last due reconciliation round: rounds run every
        // `sync_every` completed pushes and a worker that finds a round due
        // blocks on the round lock before starting its next step, so the
        // committed view is never more than `sync_every + 2·workers`
        // applies behind live (period + in-flight pushes on each side of
        // the round). On top of that the gate admits at most
        // (2·bound + 2)·(workers − 1) peer applies between pull and push.
        let workers = 4u64;
        let bound = 1u64;
        let sync_every = 3u64;
        let data = Dataset::gaussian_blobs(4, 80, 6, 0.35, 6);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(workers as usize, 6, 0.04, 0.9)
            .with_seed(6)
            .with_topology(crate::config::ServerTopology::new(2, sync_every));
        let mut t = Trainer::new(Network::mlp(6, &[12], 4, 6), train, test, cfg);
        let steps = 120;
        let r = t.run_ssp_segment(bound, steps).unwrap();
        let shards = t.router().expect("multi-server plane").shard_count() as u64;
        assert_eq!(r.shard_staleness.total(), steps * shards);
        // Rounds fire on the `sync_every` schedule (contended rounds may
        // batch, so the count is bounded by the period, not pinned to it).
        assert!(r.sync_rounds >= 1);
        assert!(r.sync_rounds <= steps / sync_every);
        let cap = (2 * bound + 2) * (workers - 1) + sync_every + 2 * workers;
        let max = r.server_shard_staleness.max().unwrap();
        assert!(
            max <= cap,
            "cross-server per-shard staleness {max} exceeds cap {cap}"
        );
        // The per-server view carries the same observations as the
        // flattened per-shard record.
        assert_eq!(r.server_shard_staleness.total(), r.shard_staleness.total());
        assert_eq!(r.server_shard_staleness.server_count(), 2);
    }

    #[test]
    fn ssp_training_learns() {
        // 8 segments (not 5): under an oversubscribed single-core CI box
        // the scheduler can hand SSP an unlucky staleness pattern, and the
        // extra segments keep the accuracy threshold comfortably cleared
        // without weakening it.
        let mut t = trainer(4, 4);
        for _ in 0..8 {
            t.run_ssp_segment(3, 60).unwrap();
        }
        assert!(t.evaluate() > 0.6, "accuracy {}", t.evaluate());
    }

    #[test]
    fn excluded_workers_do_not_hold_the_gate() {
        let mut t = trainer(4, 5);
        let mut cfg = t.config().clone();
        cfg.excluded_workers = vec![1];
        t.set_config(cfg).unwrap();
        // Would deadlock if worker 1's zero iterations pinned the floor.
        let r = t.run_ssp_segment(1, 60).unwrap();
        assert_eq!(r.steps, 60);
        assert_eq!(r.worker_profiles[1].steps(), 0);
    }
}
