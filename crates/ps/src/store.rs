//! The sharded parameter store — the "parameter servers" of the paper's
//! architecture, collapsed into lock-guarded shards within one process.
//!
//! The hot path is allocation- and contention-conscious: workers reuse a
//! [`PullBuffer`] across steps (zero heap allocations in the steady state),
//! pushes can be applied shard-by-shard so concurrent workers only contend
//! on the shards they are currently touching, and every shard carries its
//! own version clock so staleness is measurable per shard — the substrate
//! OSP-style two-stage synchronization and per-shard SSP bounds need.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A contiguous, near-equal partition of `0..total` into parts — the single
/// source of truth for how parameters split into shards, and (reused one
/// level up) how shard indices split across parameter servers.
///
/// The split puts the one-element remainders on the leading parts, which
/// makes it *self-similar*: partitioning a contiguous run of parts' combined
/// extent again with `ShardLayout::new` reproduces exactly the same interior
/// boundaries. [`crate::PsServer`] relies on this to give each server a
/// local store whose shard boundaries coincide with the global layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// `(offset, len)` of every part, contiguous and covering `0..total`.
    ranges: Vec<(usize, usize)>,
    total: usize,
}

impl ShardLayout {
    /// Partitions `0..total` into `parts` contiguous near-equal ranges
    /// (clamped to `total` so no part is empty).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` or `parts == 0`.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(total > 0, "cannot partition an empty range");
        assert!(parts > 0, "need at least one part");
        let parts = parts.min(total);
        let base = total / parts;
        let rem = total % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut offset = 0;
        for i in 0..parts {
            let len = base + usize::from(i < rem);
            ranges.push((offset, len));
            offset += len;
        }
        ShardLayout { ranges, total }
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Always false: a layout has at least one part.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Size of the partitioned range.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `(offset, len)` of part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn range(&self, i: usize) -> (usize, usize) {
        self.ranges[i]
    }

    /// Iterates over the `(offset, len)` ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges.iter().copied()
    }
}

/// The payload of one shard update: the full dense gradient slice, or a
/// sparse set of segments for workloads (embedding tables) whose per-batch
/// gradient touches only a few rows.
///
/// `Sparse` is **semantically identical** to a dense update whose gradient
/// is the segments scattered into a zero vector: momentum still decays on
/// every element (`v ← μv` where the gradient is zero), the shard clock
/// still bumps once, and the numerics match the dense apply bit for bit.
/// What changes is what has to *move* — a push ships only the touched rows,
/// which is the entire point once the update crosses a wire
/// ([`crate::transport::wire`]'s `PushShardSparse` frame).
#[derive(Debug, Clone, Copy)]
pub enum UpdateData<'a> {
    /// The gradient slice for the whole shard.
    Dense(&'a [f32]),
    /// Sorted, disjoint `(start, len)` segments within the shard plus their
    /// concatenated gradient values.
    Sparse {
        /// `(start, len)` of each segment, shard-relative, ascending and
        /// non-overlapping.
        indices: &'a [(u32, u32)],
        /// The segments' gradient values, concatenated in segment order
        /// (`rows.len()` = sum of segment lengths).
        rows: &'a [f32],
    },
}

/// One parameter shard: a contiguous slice of the flat parameter vector and
/// its momentum (velocity) state. In TensorFlow each PS owns a subset of the
/// model variables; a shard plays exactly that role.
#[derive(Debug)]
struct Shard {
    params: Vec<f32>,
    velocity: Vec<f32>,
}

/// A reusable pull destination: the flat parameter image plus the per-shard
/// version clocks observed while each shard was copied.
///
/// Construct once per worker and hand it to [`ShardedStore::pull_into`]
/// every step; after the first pull no further heap allocation happens (the
/// backing vectors are resized once and then rewritten in place).
#[derive(Debug, Default)]
pub struct PullBuffer {
    params: Vec<f32>,
    shard_versions: Vec<u64>,
    version: u64,
}

impl PullBuffer {
    /// Creates an empty buffer; the first [`ShardedStore::pull_into`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pulled flat parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Global store version observed at the start of the pull.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Version clock of `shard` observed while that shard was copied.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for the last pulled store.
    pub fn shard_version(&self, shard: usize) -> u64 {
        self.shard_versions[shard]
    }

    /// All per-shard clocks observed during the pull.
    pub fn shard_versions(&self) -> &[u64] {
        &self.shard_versions
    }
}

/// A parameter store sharded across `s` lock-guarded segments, with a global
/// monotonically-increasing version counter and one clock per shard.
///
/// * **ASP** pushes apply to each shard immediately under its own lock; the
///   global version bumps once per push ([`ShardedStore::complete_push`])
///   and each shard's clock bumps once per shard apply. Staleness of a
///   gradient is the number of versions applied between the worker's pull
///   and its push — measured, not modeled, and now measurable per shard.
/// * **BSP** pushes are pre-aggregated by the striped barrier in the engine
///   and applied here stripe-by-stripe as averaged per-shard updates.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    /// Shard layout over the flat vector.
    layout: ShardLayout,
    /// Per-shard update clocks, bumped once per shard apply (under that
    /// shard's lock).
    shard_versions: Vec<AtomicU64>,
    version: AtomicU64,
    param_count: usize,
}

impl ShardedStore {
    /// Creates a store over `initial` parameters split into `shards` nearly
    /// equal contiguous shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `initial` is empty.
    pub fn new(initial: &[f32], shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(!initial.is_empty(), "cannot shard zero parameters");
        let layout = ShardLayout::new(initial.len(), shards);
        let storage = layout
            .iter()
            .map(|(offset, len)| {
                Mutex::new(Shard {
                    params: initial[offset..offset + len].to_vec(),
                    velocity: vec![0.0; len],
                })
            })
            .collect();
        let clocks = (0..layout.len()).map(|_| AtomicU64::new(0)).collect();
        ShardedStore {
            shards: storage,
            shard_versions: clocks,
            version: AtomicU64::new(0),
            param_count: layout.total(),
            layout,
        }
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// `(offset, len)` of `shard` within the flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_range(&self, shard: usize) -> (usize, usize) {
        self.layout.range(shard)
    }

    /// The layout partitioning the flat vector into shards.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Current global version (number of completed pushes).
    pub fn version(&self) -> u64 {
        // Acquire: pairs with the Release bump in `complete_push` so a
        // reader that observes version `k` also observes the parameter
        // writes of those `k` pushes (the shard mutexes order the data for
        // lock-holders; this covers lock-free version reads).
        self.version.load(Ordering::Acquire)
    }

    /// Current clock of `shard` (number of applies to that shard).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_version(&self, shard: usize) -> u64 {
        // Acquire: pairs with the Release bump in `apply_shard_update`, so
        // a lock-free reader that observes clock `k` also observes the
        // parameter writes of those `k` applies.
        self.shard_versions[shard].load(Ordering::Acquire)
    }

    /// Pulls a full copy of the parameters plus the version observed at the
    /// start of the pull.
    ///
    /// Allocates a fresh vector per call; the hot path should prefer
    /// [`ShardedStore::pull_into`] with a reused [`PullBuffer`].
    pub fn pull(&self) -> (Vec<f32>, u64) {
        let mut buf = PullBuffer::new();
        let version = self.pull_into(&mut buf);
        (buf.params, version)
    }

    /// Pulls the parameters into `buf`, reusing its backing storage, and
    /// returns the global version observed at the start of the pull (also
    /// recorded in [`PullBuffer::version`]).
    ///
    /// After the first call on a given store, this performs **zero heap
    /// allocations**: the buffer is resized once and rewritten in place.
    ///
    /// Under ASP, shards are read under their individual locks, so a
    /// concurrent update can interleave mid-pull — the same torn-read
    /// behaviour a real ASP worker sees when pulling from multiple PSs. The
    /// per-shard clocks captured in the buffer record exactly which shard
    /// state was seen, so staleness can later be computed per shard.
    pub fn pull_into(&self, buf: &mut PullBuffer) -> u64 {
        // Acquire: see `version` — lets the observed version lower-bound the
        // parameter state read below.
        let version = self.version.load(Ordering::Acquire);
        buf.version = version;
        buf.params.resize(self.param_count, 0.0);
        buf.shard_versions.resize(self.shards.len(), 0);
        self.pull_into_slices(&mut buf.params, &mut buf.shard_versions);
        version
    }

    /// Applies a momentum-SGD step (`v ← μv − ηg`, `p ← p + v`) to a single
    /// shard. `grad` must be the gradient slice for exactly that shard (see
    /// [`ShardedStore::shard_range`]).
    ///
    /// Bumps the shard's clock and returns the clock value **before** this
    /// apply, so the caller can compute per-shard staleness as
    /// `returned − pulled_shard_version` without any racy separate load.
    ///
    /// Does **not** bump the global version; a logical push that updates
    /// every shard should finish with [`ShardedStore::complete_push`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `grad.len()` differs from the
    /// shard's length.
    pub fn apply_shard_update(&self, shard: usize, grad: &[f32], lr: f64, momentum: f64) -> u64 {
        let (_, len) = self.layout.range(shard);
        assert_eq!(
            grad.len(),
            len,
            "gradient length mismatch for shard {shard}"
        );
        let mu = momentum as f32;
        let eta = lr as f32;
        let mut guard = self.shards[shard].lock();
        let state = &mut *guard;
        for ((p, v), gv) in state
            .params
            .iter_mut()
            .zip(state.velocity.iter_mut())
            .zip(grad)
        {
            *v = mu * *v - eta * gv;
            *p += *v;
        }
        // Release: publishes this apply's parameter writes to lock-free
        // `shard_version` (Acquire) readers; under-lock readers (pull_into)
        // already get the mutex's ordering. The fetch_add return value is
        // what makes per-shard staleness race-free: it is exactly the
        // number of applies that landed before this one.
        self.shard_versions[shard].fetch_add(1, Ordering::Release)
    }

    /// Applies a momentum-SGD step carried as [`UpdateData`] to a single
    /// shard: dense payloads take the [`ShardedStore::apply_shard_update`]
    /// path verbatim; sparse payloads apply the segments and decay the
    /// velocity of every untouched element, producing **bit-identical**
    /// state to a dense apply of the same segments scattered into a zero
    /// gradient. Bumps the shard clock once and returns its pre-apply value
    /// either way, so staleness accounting cannot tell the two apart.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, a dense payload's length differs
    /// from the shard's, or a sparse payload's segments are unsorted,
    /// overlapping, out of bounds, or disagree with `rows.len()`.
    pub fn apply_shard_update_data(
        &self,
        shard: usize,
        data: UpdateData<'_>,
        lr: f64,
        momentum: f64,
    ) -> u64 {
        let (indices, rows) = match data {
            UpdateData::Dense(grad) => return self.apply_shard_update(shard, grad, lr, momentum),
            UpdateData::Sparse { indices, rows } => (indices, rows),
        };
        let (_, len) = self.layout.range(shard);
        let mu = momentum as f32;
        let eta = lr as f32;
        let mut guard = self.shards[shard].lock();
        let state = &mut *guard;
        // Untouched prefix/gap/tail elements still take the dense step with
        // gradient zero: `v ← μv − η·0; p ← p + v`. Writing it as `μv`
        // is bit-identical for finite `η` (x − 0.0 == x in IEEE-754).
        let decay = |params: &mut [f32], velocity: &mut [f32]| {
            for (p, v) in params.iter_mut().zip(velocity) {
                *v *= mu;
                *p += *v;
            }
        };
        let mut cursor = 0usize;
        let mut row_offset = 0usize;
        for &(start, seg_len) in indices {
            let (start, seg_len) = (start as usize, seg_len as usize);
            assert!(
                start >= cursor && start + seg_len <= len,
                "sparse segment ({start}, {seg_len}) invalid for shard {shard} of {len} \
                 (cursor {cursor})"
            );
            let (params, velocity) = (&mut state.params, &mut state.velocity);
            decay(&mut params[cursor..start], &mut velocity[cursor..start]);
            let seg = rows
                .get(row_offset..row_offset + seg_len)
                .expect("sparse rows shorter than the segment lengths");
            for ((p, v), gv) in params[start..start + seg_len]
                .iter_mut()
                .zip(&mut velocity[start..start + seg_len])
                .zip(seg)
            {
                *v = mu * *v - eta * gv;
                *p += *v;
            }
            cursor = start + seg_len;
            row_offset += seg_len;
        }
        assert_eq!(
            row_offset,
            rows.len(),
            "sparse rows longer than the segment lengths"
        );
        decay(
            &mut state.params[cursor..len],
            &mut state.velocity[cursor..len],
        );
        // Release: same contract as `apply_shard_update`.
        self.shard_versions[shard].fetch_add(1, Ordering::Release)
    }

    /// Copies every shard's parameters and clocks into the provided slices
    /// — the multi-server assembly primitive. The router points these
    /// directly at its flat worker buffer, so a routed pull costs one copy
    /// of the parameter vector, the same as the single-server
    /// [`ShardedStore::pull_into`] path.
    ///
    /// # Panics
    ///
    /// Panics if `params_out.len()` differs from the parameter count or
    /// `clocks_out.len()` from the shard count.
    pub fn pull_into_slices(&self, params_out: &mut [f32], clocks_out: &mut [u64]) {
        assert_eq!(params_out.len(), self.param_count, "params length mismatch");
        assert_eq!(
            clocks_out.len(),
            self.shards.len(),
            "clocks length mismatch"
        );
        for (i, (offset, len)) in self.layout.iter().enumerate() {
            let shard = self.shards[i].lock();
            params_out[offset..offset + len].copy_from_slice(&shard.params);
            // Relaxed: the clock is only bumped (or pinned) under this
            // shard's lock, which we hold.
            clocks_out[i] = self.shard_versions[i].load(Ordering::Relaxed);
        }
    }

    /// Copies shard `shard`'s parameters into `out` (resized to fit) and
    /// returns the shard clock observed under the shard lock — the read half
    /// of a stage-2 reconciliation: the returned clock matches the copied
    /// data exactly.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn read_shard_into(&self, shard: usize, out: &mut Vec<f32>) -> u64 {
        let (_, len) = self.layout.range(shard);
        out.resize(len, 0.0);
        let guard = self.shards[shard].lock();
        out.copy_from_slice(&guard.params);
        // Relaxed: the clock is only bumped under this shard's lock, which
        // we hold.
        self.shard_versions[shard].load(Ordering::Relaxed)
    }

    /// Overwrites shard `shard`'s parameters and pins its clock to `clock` —
    /// the write half of a stage-2 reconciliation, applied to a committed
    /// replica so its clock mirrors the owner's clock at copy time. Velocity
    /// is untouched (momentum state lives only on the owning server).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `params.len()` differs from the
    /// shard's length.
    pub fn overwrite_shard(&self, shard: usize, params: &[f32], clock: u64) {
        let (_, len) = self.layout.range(shard);
        assert_eq!(
            params.len(),
            len,
            "params length mismatch for shard {shard}"
        );
        let mut guard = self.shards[shard].lock();
        guard.params.copy_from_slice(params);
        // Release: publishes the overwrite to lock-free `shard_version`
        // readers; under-lock readers get the mutex's ordering.
        self.shard_versions[shard].store(clock, Ordering::Release);
    }

    /// Completes a logical full push: bumps the global version once and
    /// returns the staleness of the push — the number of pushes that
    /// completed between the worker's pull (at `pulled_version`) and this
    /// one. Deriving staleness from the `fetch_add` return value (rather
    /// than a separate load before the applies) makes the measurement
    /// race-free: no concurrent push can slip between the read and the bump.
    pub fn complete_push(&self, pulled_version: u64) -> u64 {
        // Release: pairs with the Acquire loads in `version`/`pull_into`;
        // RMWs form a release sequence, so a pull observing version `k`
        // synchronizes with all `k` completed pushes.
        self.version
            .fetch_add(1, Ordering::Release)
            .saturating_sub(pulled_version)
    }

    /// Applies a full-gradient SGD-momentum update across all shards and
    /// bumps the version once.
    ///
    /// Returns the staleness of the update: pushes completed between the
    /// pull and this push (derived race-free from the version bump itself).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the parameter count.
    pub fn apply_update(&self, grad: &[f32], lr: f64, momentum: f64, pulled_version: u64) -> u64 {
        assert_eq!(grad.len(), self.param_count, "gradient length mismatch");
        for (i, (offset, len)) in self.layout.iter().enumerate() {
            self.apply_shard_update(i, &grad[offset..offset + len], lr, momentum);
        }
        self.complete_push(pulled_version)
    }

    /// Snapshot of the full parameter vector (without a version).
    pub fn snapshot_params(&self) -> Vec<f32> {
        self.pull().0
    }

    /// Copies the current parameters into `out` without allocating — the
    /// building block multi-server snapshots use to assemble each server's
    /// slice in place.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the parameter count.
    pub fn snapshot_params_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.param_count, "output length mismatch");
        for (i, (offset, len)) in self.layout.iter().enumerate() {
            let shard = self.shards[i].lock();
            out[offset..offset + len].copy_from_slice(&shard.params);
        }
    }

    /// Snapshot of the full velocity vector.
    pub fn snapshot_velocity(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count];
        self.snapshot_velocity_into(&mut out);
        out
    }

    /// Copies the current velocity into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the parameter count.
    pub fn snapshot_velocity_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.param_count, "output length mismatch");
        for (i, (offset, len)) in self.layout.iter().enumerate() {
            let shard = self.shards[i].lock();
            out[offset..offset + len].copy_from_slice(&shard.velocity);
        }
    }

    /// Overwrites parameters and velocity from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the parameter count.
    pub fn restore(&self, params: &[f32], velocity: &[f32]) {
        assert_eq!(params.len(), self.param_count, "params length mismatch");
        assert_eq!(velocity.len(), self.param_count, "velocity length mismatch");
        for (i, (offset, len)) in self.layout.iter().enumerate() {
            let mut shard = self.shards[i].lock();
            shard.params.copy_from_slice(&params[offset..offset + len]);
            shard
                .velocity
                .copy_from_slice(&velocity[offset..offset + len]);
        }
    }

    /// Resets the velocity to zero (momentum-policy changes).
    pub fn reset_velocity(&self) {
        for i in 0..self.shards.len() {
            let mut shard = self.shards[i].lock();
            shard.velocity.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Whether every stored parameter is finite.
    pub fn is_finite(&self) -> bool {
        for i in 0..self.shards.len() {
            let shard = self.shards[i].lock();
            if !shard.params.iter().all(|p| p.is_finite()) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sharding_covers_all_params() {
        let init: Vec<f32> = (0..103).map(|i| i as f32).collect();
        let store = ShardedStore::new(&init, 8);
        assert_eq!(store.param_count(), 103);
        assert_eq!(store.shard_count(), 8);
        let (pulled, v) = store.pull();
        assert_eq!(pulled, init);
        assert_eq!(v, 0);
        // The layout partitions 0..n exactly.
        let mut expected_offset = 0;
        for i in 0..store.shard_count() {
            let (offset, len) = store.shard_range(i);
            assert_eq!(offset, expected_offset);
            expected_offset += len;
        }
        assert_eq!(expected_offset, 103);
    }

    #[test]
    fn more_shards_than_params_clamps() {
        let store = ShardedStore::new(&[1.0, 2.0], 8);
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.pull().0, vec![1.0, 2.0]);
    }

    #[test]
    fn update_matches_sgd_momentum() {
        let store = ShardedStore::new(&[1.0, 2.0, 3.0], 2);
        let staleness = store.apply_update(&[1.0, 1.0, 1.0], 0.5, 0.0, 0);
        assert_eq!(staleness, 0);
        assert_eq!(store.pull().0, vec![0.5, 1.5, 2.5]);
        assert_eq!(store.version(), 1);
        // Second update with momentum 0.9: v = -0.5*0.9... velocity carried.
        let store = ShardedStore::new(&[0.0], 1);
        store.apply_update(&[1.0], 0.1, 0.9, 0);
        store.apply_update(&[1.0], 0.1, 0.9, 1);
        let p = store.pull().0[0];
        assert!((p + 0.29).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn staleness_is_versions_behind() {
        let store = ShardedStore::new(&[0.0; 10], 2);
        let (_, v0) = store.pull();
        store.apply_update(&[0.1; 10], 0.1, 0.0, v0); // staleness 0
        store.apply_update(&[0.1; 10], 0.1, 0.0, v0); // now 1 behind
        let s = store.apply_update(&[0.1; 10], 0.1, 0.0, v0);
        assert_eq!(s, 2);
    }

    #[test]
    fn pull_into_reuses_buffer_without_reallocating() {
        let init: Vec<f32> = (0..97).map(|i| i as f32 * 0.5).collect();
        let store = ShardedStore::new(&init, 5);
        let mut buf = PullBuffer::new();
        let v = store.pull_into(&mut buf);
        assert_eq!(v, 0);
        assert_eq!(buf.params(), &init[..]);
        assert_eq!(buf.shard_versions(), &[0; 5]);
        let ptr = buf.params().as_ptr();
        store.apply_update(&vec![1.0; 97], 0.1, 0.0, 0);
        let v = store.pull_into(&mut buf);
        assert_eq!(v, 1);
        // Steady state: same backing allocation, fresh contents.
        assert_eq!(buf.params().as_ptr(), ptr);
        assert_eq!(buf.params(), &store.pull().0[..]);
        assert_eq!(buf.shard_versions(), &[1; 5]);
        assert_eq!(buf.version(), 1);
    }

    #[test]
    fn shard_updates_compose_into_full_push() {
        let init = vec![1.0f32; 10];
        let full = ShardedStore::new(&init, 3);
        let sharded = ShardedStore::new(&init, 3);
        let grad: Vec<f32> = (0..10).map(|i| i as f32 * 0.1).collect();
        full.apply_update(&grad, 0.2, 0.9, 0);
        for i in 0..sharded.shard_count() {
            let (offset, len) = sharded.shard_range(i);
            let prev = sharded.apply_shard_update(i, &grad[offset..offset + len], 0.2, 0.9);
            assert_eq!(prev, 0);
            assert_eq!(sharded.shard_version(i), 1);
        }
        let staleness = sharded.complete_push(0);
        assert_eq!(staleness, 0);
        assert_eq!(sharded.version(), 1);
        assert_eq!(full.snapshot_params(), sharded.snapshot_params());
        assert_eq!(full.snapshot_velocity(), sharded.snapshot_velocity());
    }

    #[test]
    fn per_shard_clocks_track_applies() {
        let store = ShardedStore::new(&[0.0; 8], 4);
        let (offset, len) = store.shard_range(2);
        assert_eq!((offset, len), (4, 2));
        let prev = store.apply_shard_update(2, &[1.0; 2], 0.1, 0.0);
        assert_eq!(prev, 0);
        let prev = store.apply_shard_update(2, &[1.0; 2], 0.1, 0.0);
        assert_eq!(prev, 1);
        assert_eq!(store.shard_version(2), 2);
        // Untouched shards keep clock 0, and the global version only moves
        // on complete_push.
        assert_eq!(store.shard_version(0), 0);
        assert_eq!(store.version(), 0);
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let store = ShardedStore::new(&[1.0, 2.0, 3.0, 4.0], 3);
        store.apply_update(&[1.0; 4], 0.1, 0.9, 0);
        let p = store.snapshot_params();
        let v = store.snapshot_velocity();
        store.apply_update(&[5.0; 4], 0.1, 0.9, 1);
        assert_ne!(store.snapshot_params(), p);
        store.restore(&p, &v);
        assert_eq!(store.snapshot_params(), p);
        assert_eq!(store.snapshot_velocity(), v);
    }

    #[test]
    fn concurrent_asp_updates_all_land() {
        let store = Arc::new(ShardedStore::new(&vec![0.0f32; 64], 4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let (_, v) = store.pull();
                        store.apply_update(&vec![1.0f32; 64], 0.001, 0.0, v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.version(), 400);
        for i in 0..store.shard_count() {
            assert_eq!(store.shard_version(i), 400);
        }
        // With lr 0.001 and 400 unit gradients every parameter moved by -0.4.
        for p in store.snapshot_params() {
            assert!((p + 0.4).abs() < 1e-4, "p = {p}");
        }
    }

    #[test]
    fn concurrent_pull_into_matches_fresh_pull() {
        // Pushers hammer the store while a reader reuses one buffer; every
        // intermediate read must be shaped right, and once quiescent the
        // reused buffer must match a fresh pull exactly.
        let store = Arc::new(ShardedStore::new(&vec![0.0f32; 256], 8));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let pushers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let (_, v) = store.pull();
                        store.apply_update(&vec![0.01f32; 256], 0.001, 0.0, v);
                    }
                })
            })
            .collect();
        let reader = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut buf = PullBuffer::new();
                let mut pulls = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = store.pull_into(&mut buf);
                    assert_eq!(buf.params().len(), 256);
                    assert_eq!(buf.version(), v);
                    assert!(buf.params().iter().all(|p| p.is_finite()));
                    // Shard clocks never run behind the global version
                    // observed before the shard copies.
                    for &sv in buf.shard_versions() {
                        assert!(sv >= v, "shard clock {sv} behind global {v}");
                    }
                    pulls += 1;
                }
                (buf, pulls)
            })
        };
        for t in pushers {
            t.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let (mut buf, pulls) = reader.join().unwrap();
        assert!(pulls > 0, "reader never pulled");
        // Quiescent: the reused buffer and a fresh pull agree bit-for-bit.
        let ptr = buf.params().as_ptr();
        let version = store.pull_into(&mut buf);
        let (fresh, fresh_version) = store.pull();
        assert_eq!(version, fresh_version);
        assert_eq!(version, 600);
        assert_eq!(buf.params(), &fresh[..]);
        assert_eq!(buf.params().as_ptr(), ptr, "steady-state pull reallocated");
    }

    #[test]
    fn shard_layout_is_self_similar() {
        // Re-partitioning a contiguous run of shards' combined extent must
        // reproduce the global interior boundaries — the property PsServer
        // relies on to align its local stores with the global layout.
        for (n, shards, servers) in [(103, 8, 3), (11, 3, 2), (64, 7, 4), (9, 9, 5)] {
            let global = ShardLayout::new(n, shards);
            let ownership = ShardLayout::new(global.len(), servers);
            for s in 0..ownership.len() {
                let (first, count) = ownership.range(s);
                let param_offset = global.range(first).0;
                let extent: usize = (first..first + count).map(|g| global.range(g).1).sum();
                let local = ShardLayout::new(extent, count);
                for k in 0..count {
                    let (lo, ll) = local.range(k);
                    let (go, gl) = global.range(first + k);
                    assert_eq!(
                        param_offset + lo,
                        go,
                        "boundary drift at {n}/{shards}/{servers}"
                    );
                    assert_eq!(ll, gl);
                }
            }
        }
    }

    #[test]
    fn read_and_overwrite_shard_round_trip() {
        let init: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let owner = ShardedStore::new(&init, 3);
        let replica = ShardedStore::new(&init, 3);
        // Owner takes two applies on shard 1; replica lags.
        let (offset, len) = owner.shard_range(1);
        owner.apply_shard_update(1, &vec![1.0; len], 0.1, 0.0);
        owner.apply_shard_update(1, &vec![1.0; len], 0.1, 0.0);
        // Stage-2: copy owner shard 1 into the replica with its clock.
        let mut scratch = Vec::new();
        let clock = owner.read_shard_into(1, &mut scratch);
        assert_eq!(clock, 2);
        assert_eq!(scratch.len(), len);
        replica.overwrite_shard(1, &scratch, clock);
        assert_eq!(replica.shard_version(1), 2);
        let owner_params = owner.snapshot_params();
        let replica_params = replica.snapshot_params();
        assert_eq!(
            &owner_params[offset..offset + len],
            &replica_params[offset..offset + len]
        );
        // Untouched shards keep their initial contents and clock 0.
        assert_eq!(&replica_params[..offset], &init[..offset]);
        assert_eq!(replica.shard_version(0), 0);
    }

    #[test]
    fn sparse_update_equals_scattered_dense_update() {
        let init: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).sin()).collect();
        let dense_store = ShardedStore::new(&init, 3);
        let sparse_store = ShardedStore::new(&init, 3);
        // Two pushes so momentum state (incl. decay of untouched entries)
        // is exercised, not just the first step.
        for push in 0..2u64 {
            for shard in 0..3 {
                let (_, len) = dense_store.shard_range(shard);
                // Touch the first and last element of every shard.
                let mut grad = vec![0.0f32; len];
                grad[0] = 1.0 + push as f32;
                grad[len - 1] = -0.5;
                let indices = [(0u32, 1u32), ((len - 1) as u32, 1u32)];
                let rows = [grad[0], grad[len - 1]];
                let a = dense_store.apply_shard_update(shard, &grad, 0.1, 0.9);
                let b = sparse_store.apply_shard_update_data(
                    shard,
                    UpdateData::Sparse {
                        indices: &indices,
                        rows: &rows,
                    },
                    0.1,
                    0.9,
                );
                assert_eq!(a, b, "clock skew at push {push} shard {shard}");
            }
            assert_eq!(
                dense_store.complete_push(push),
                sparse_store.complete_push(push)
            );
        }
        assert_eq!(
            dense_store.snapshot_params(),
            sparse_store.snapshot_params()
        );
        assert_eq!(
            dense_store.snapshot_velocity(),
            sparse_store.snapshot_velocity()
        );
    }

    #[test]
    fn sparse_update_with_no_segments_still_decays_and_ticks() {
        let store = ShardedStore::new(&[1.0, 1.0], 1);
        store.apply_shard_update(0, &[1.0, 1.0], 0.5, 0.5);
        let prev = store.apply_shard_update_data(
            0,
            UpdateData::Sparse {
                indices: &[],
                rows: &[],
            },
            0.5,
            0.5,
        );
        assert_eq!(prev, 1);
        assert_eq!(store.shard_version(0), 2);
        // v was -0.5; empty push decays it to -0.25 and applies it.
        let reference = ShardedStore::new(&[1.0, 1.0], 1);
        reference.apply_shard_update(0, &[1.0, 1.0], 0.5, 0.5);
        reference.apply_shard_update(0, &[0.0, 0.0], 0.5, 0.5);
        assert_eq!(store.snapshot_params(), reference.snapshot_params());
        assert_eq!(store.snapshot_velocity(), reference.snapshot_velocity());
    }

    #[test]
    #[should_panic(expected = "sparse segment")]
    fn overlapping_sparse_segments_panic() {
        let store = ShardedStore::new(&[0.0; 8], 1);
        store.apply_shard_update_data(
            0,
            UpdateData::Sparse {
                indices: &[(0, 3), (2, 2)],
                rows: &[1.0; 5],
            },
            0.1,
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "sparse rows longer")]
    fn oversized_sparse_rows_panic() {
        let store = ShardedStore::new(&[0.0; 8], 1);
        store.apply_shard_update_data(
            0,
            UpdateData::Sparse {
                indices: &[(0, 2)],
                rows: &[1.0; 3],
            },
            0.1,
            0.0,
        );
    }

    #[test]
    fn finiteness_detection() {
        let store = ShardedStore::new(&[1.0, 2.0], 1);
        assert!(store.is_finite());
        store.apply_update(&[f32::INFINITY, 0.0], 1.0, 0.0, 0);
        assert!(!store.is_finite());
    }
}
