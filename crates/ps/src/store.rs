//! The sharded parameter store — the "parameter servers" of the paper's
//! architecture, collapsed into lock-guarded shards within one process.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One parameter shard: a contiguous slice of the flat parameter vector and
/// its momentum (velocity) state. In TensorFlow each PS owns a subset of the
/// model variables; a shard plays exactly that role.
#[derive(Debug)]
struct Shard {
    params: Vec<f32>,
    velocity: Vec<f32>,
}

/// A parameter store sharded across `s` lock-guarded segments, with a global
/// monotonically-increasing version counter.
///
/// * **ASP** pushes apply to each shard immediately under its own lock; the
///   global version bumps once per push. Staleness of a gradient is the
///   number of versions applied between the worker's pull and its push —
///   measured, not modeled.
/// * **BSP** pushes are pre-aggregated by the barrier in the engine and
///   applied here as a single averaged update.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    /// (offset, len) of every shard in the flat vector.
    layout: Vec<(usize, usize)>,
    version: AtomicU64,
    param_count: usize,
}

impl ShardedStore {
    /// Creates a store over `initial` parameters split into `shards` nearly
    /// equal contiguous shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `initial` is empty.
    pub fn new(initial: &[f32], shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(!initial.is_empty(), "cannot shard zero parameters");
        let n = initial.len();
        let shards = shards.min(n);
        let base = n / shards;
        let rem = n % shards;
        let mut layout = Vec::with_capacity(shards);
        let mut offset = 0;
        let mut storage = Vec::with_capacity(shards);
        for i in 0..shards {
            let len = base + usize::from(i < rem);
            layout.push((offset, len));
            storage.push(Mutex::new(Shard {
                params: initial[offset..offset + len].to_vec(),
                velocity: vec![0.0; len],
            }));
            offset += len;
        }
        ShardedStore {
            shards: storage,
            layout,
            version: AtomicU64::new(0),
            param_count: n,
        }
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current global version (number of updates applied).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Pulls a full copy of the parameters plus the version observed at the
    /// start of the pull.
    ///
    /// Under ASP, shards are read under their individual locks, so a
    /// concurrent update can interleave mid-pull — the same torn-read
    /// behaviour a real ASP worker sees when pulling from multiple PSs.
    pub fn pull(&self) -> (Vec<f32>, u64) {
        let version = self.version.load(Ordering::SeqCst);
        let mut out = vec![0.0f32; self.param_count];
        for (i, &(offset, len)) in self.layout.iter().enumerate() {
            let shard = self.shards[i].lock();
            out[offset..offset + len].copy_from_slice(&shard.params);
        }
        (out, version)
    }

    /// Applies a full-gradient SGD-momentum update (`v ← μv − ηg`,
    /// `p ← p + v`) across all shards and bumps the version once.
    ///
    /// Returns the staleness of the update: `version_at_apply − pulled_version`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the parameter count.
    pub fn apply_update(&self, grad: &[f32], lr: f64, momentum: f64, pulled_version: u64) -> u64 {
        assert_eq!(grad.len(), self.param_count, "gradient length mismatch");
        let before = self.version.load(Ordering::SeqCst);
        let mu = momentum as f32;
        let eta = lr as f32;
        for (i, &(offset, len)) in self.layout.iter().enumerate() {
            let mut guard = self.shards[i].lock();
            let shard = &mut *guard;
            let g = &grad[offset..offset + len];
            for ((p, v), gv) in shard
                .params
                .iter_mut()
                .zip(shard.velocity.iter_mut())
                .zip(g)
            {
                *v = mu * *v - eta * gv;
                *p += *v;
            }
        }
        self.version.fetch_add(1, Ordering::SeqCst);
        before.saturating_sub(pulled_version)
    }

    /// Snapshot of the full parameter vector (without a version).
    pub fn snapshot_params(&self) -> Vec<f32> {
        self.pull().0
    }

    /// Snapshot of the full velocity vector.
    pub fn snapshot_velocity(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count];
        for (i, &(offset, len)) in self.layout.iter().enumerate() {
            let shard = self.shards[i].lock();
            out[offset..offset + len].copy_from_slice(&shard.velocity);
        }
        out
    }

    /// Overwrites parameters and velocity from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the parameter count.
    pub fn restore(&self, params: &[f32], velocity: &[f32]) {
        assert_eq!(params.len(), self.param_count, "params length mismatch");
        assert_eq!(velocity.len(), self.param_count, "velocity length mismatch");
        for (i, &(offset, len)) in self.layout.iter().enumerate() {
            let mut shard = self.shards[i].lock();
            shard.params.copy_from_slice(&params[offset..offset + len]);
            shard
                .velocity
                .copy_from_slice(&velocity[offset..offset + len]);
        }
    }

    /// Resets the velocity to zero (momentum-policy changes).
    pub fn reset_velocity(&self) {
        for i in 0..self.shards.len() {
            let mut shard = self.shards[i].lock();
            shard.velocity.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Whether every stored parameter is finite.
    pub fn is_finite(&self) -> bool {
        for i in 0..self.shards.len() {
            let shard = self.shards[i].lock();
            if !shard.params.iter().all(|p| p.is_finite()) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sharding_covers_all_params() {
        let init: Vec<f32> = (0..103).map(|i| i as f32).collect();
        let store = ShardedStore::new(&init, 8);
        assert_eq!(store.param_count(), 103);
        assert_eq!(store.shard_count(), 8);
        let (pulled, v) = store.pull();
        assert_eq!(pulled, init);
        assert_eq!(v, 0);
    }

    #[test]
    fn more_shards_than_params_clamps() {
        let store = ShardedStore::new(&[1.0, 2.0], 8);
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.pull().0, vec![1.0, 2.0]);
    }

    #[test]
    fn update_matches_sgd_momentum() {
        let store = ShardedStore::new(&[1.0, 2.0, 3.0], 2);
        let staleness = store.apply_update(&[1.0, 1.0, 1.0], 0.5, 0.0, 0);
        assert_eq!(staleness, 0);
        assert_eq!(store.pull().0, vec![0.5, 1.5, 2.5]);
        assert_eq!(store.version(), 1);
        // Second update with momentum 0.9: v = -0.5*0.9... velocity carried.
        let store = ShardedStore::new(&[0.0], 1);
        store.apply_update(&[1.0], 0.1, 0.9, 0);
        store.apply_update(&[1.0], 0.1, 0.9, 1);
        let p = store.pull().0[0];
        assert!((p + 0.29).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn staleness_is_versions_behind() {
        let store = ShardedStore::new(&[0.0; 10], 2);
        let (_, v0) = store.pull();
        store.apply_update(&[0.1; 10], 0.1, 0.0, v0); // staleness 0
        store.apply_update(&[0.1; 10], 0.1, 0.0, v0); // now 1 behind
        let s = store.apply_update(&[0.1; 10], 0.1, 0.0, v0);
        assert_eq!(s, 2);
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let store = ShardedStore::new(&[1.0, 2.0, 3.0, 4.0], 3);
        store.apply_update(&[1.0; 4], 0.1, 0.9, 0);
        let p = store.snapshot_params();
        let v = store.snapshot_velocity();
        store.apply_update(&[5.0; 4], 0.1, 0.9, 1);
        assert_ne!(store.snapshot_params(), p);
        store.restore(&p, &v);
        assert_eq!(store.snapshot_params(), p);
        assert_eq!(store.snapshot_velocity(), v);
    }

    #[test]
    fn concurrent_asp_updates_all_land() {
        let store = Arc::new(ShardedStore::new(&vec![0.0f32; 64], 4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let (_, v) = store.pull();
                        store.apply_update(&vec![1.0f32; 64], 0.001, 0.0, v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.version(), 400);
        // With lr 0.001 and 400 unit gradients every parameter moved by -0.4.
        for p in store.snapshot_params() {
            assert!((p + 0.4).abs() < 1e-4, "p = {p}");
        }
    }

    #[test]
    fn finiteness_detection() {
        let store = ShardedStore::new(&[1.0, 2.0], 1);
        assert!(store.is_finite());
        store.apply_update(&[f32::INFINITY, 0.0], 1.0, 0.0, 0);
        assert!(!store.is_finite());
    }
}
