//! The shard router: fans worker pushes and pulls across a tier of
//! [`PsServer`]s and drives the stage-2 reconciliation rounds.
//!
//! Ownership is itself a [`ShardLayout`]: partitioning `0..shards` across
//! `servers` gives each server a contiguous run of global shard ids (and
//! therefore a contiguous slice of the flat parameter vector). A push for
//! shard `g` goes to `owner_of(g)` and applies immediately on that server's
//! live store (stage 1). A pull assembles the *committed* view of every
//! server directly into the worker's flat buffer — one parameter copy,
//! zero allocations steady-state. Every `sync_every` completed pushes, the
//! pushing worker runs a reconciliation round (stage 2) that publishes each
//! owner's live shards — parameters and clocks together — into its
//! committed store, bounding how far any server's published view can trail
//! its live state.
//!
//! The [`WorkerPort`] enum lets the engine's worker loops drive either this
//! router or the single-server [`ShardedStore`] through one interface, so
//! BSP/ASP/SSP share their loops across topologies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::ServerTopology;
use crate::server::PsServer;
use crate::store::{PullBuffer, ShardLayout, ShardedStore, UpdateData};
use crate::transport::NetPort;

/// A multi-server parameter-server tier: N owners behind one routing layer.
#[derive(Debug)]
pub struct ShardRouter {
    servers: Vec<PsServer>,
    /// Global parameter layout (shard id → flat range).
    layout: ShardLayout,
    /// Global shard id → owning server index.
    owner: Vec<usize>,
    /// Completed pushes — the cluster-global version clock.
    version: AtomicU64,
    /// Stage-2 period in completed pushes.
    sync_every: u64,
    /// Completed stage-2 rounds (drains included) — diagnostics only.
    rounds: AtomicU64,
    /// Global version observed at the start of the last stage-2 round —
    /// the scheduling watermark: a round is due once `version` is
    /// `sync_every` past it. Kept separate from `rounds` so drains (BSP
    /// barriers, switches) advance the schedule to "now" instead of
    /// postponing the next periodic round.
    synced_version: AtomicU64,
    /// Serializes stage-2 rounds; holds the reusable copy scratch.
    sync: Mutex<Vec<f32>>,
}

impl ShardRouter {
    /// Creates a router over `initial` split into `shards` shards owned by
    /// `topology.servers` servers (both clamped as needed so no server or
    /// shard is empty).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, `shards == 0`, or the topology is
    /// invalid (see [`ServerTopology::validate`]).
    pub fn new(initial: &[f32], shards: usize, topology: ServerTopology) -> Self {
        assert!(!initial.is_empty(), "cannot shard zero parameters");
        assert!(shards > 0, "need at least one shard");
        if let Err(msg) = topology.validate() {
            panic!("invalid topology: {msg}");
        }
        let layout = ShardLayout::new(initial.len(), shards);
        let ownership = ShardLayout::new(layout.len(), topology.servers);
        let mut owner = vec![0usize; layout.len()];
        let servers: Vec<PsServer> = (0..ownership.len())
            .map(|s| {
                let (first, count) = ownership.range(s);
                owner[first..first + count].iter_mut().for_each(|o| *o = s);
                PsServer::new(s, &layout, first, count, initial)
            })
            .collect();
        ShardRouter {
            servers,
            layout,
            owner,
            version: AtomicU64::new(0),
            sync_every: topology.sync_every.max(1),
            rounds: AtomicU64::new(0),
            synced_version: AtomicU64::new(0),
            sync: Mutex::new(Vec::new()),
        }
    }

    /// Number of servers (after clamping to the shard count).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The server instances, in id order.
    pub fn servers(&self) -> &[PsServer] {
        &self.servers
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.layout.total()
    }

    /// Number of global shards.
    pub fn shard_count(&self) -> usize {
        self.layout.len()
    }

    /// `(offset, len)` of global shard `g` in the flat vector.
    pub fn shard_range(&self, g: usize) -> (usize, usize) {
        self.layout.range(g)
    }

    /// The server owning global shard `g`.
    pub fn owner_of(&self, g: usize) -> usize {
        self.owner[g]
    }

    /// Stage-2 period in completed pushes.
    pub fn sync_every(&self) -> u64 {
        self.sync_every
    }

    /// Cluster-global version: number of completed pushes.
    pub fn version(&self) -> u64 {
        // Acquire: pairs with the Release bump in `complete_push`.
        self.version.load(Ordering::Acquire)
    }

    /// Completed stage-2 reconciliation rounds.
    pub fn sync_rounds(&self) -> u64 {
        self.rounds.load(Ordering::Acquire)
    }

    /// Stage-1 apply: routes the gradient slice for global shard `g` to its
    /// owner and applies it on the live store. Returns the owner's live
    /// shard clock before the apply (see
    /// [`ShardedStore::apply_shard_update`]).
    pub fn apply_shard_update(&self, g: usize, grad: &[f32], lr: f64, momentum: f64) -> u64 {
        let server = &self.servers[self.owner[g]];
        server.apply_local(g - server.shard_offset(), grad, lr, momentum)
    }

    /// Stage-1 apply of an [`UpdateData`] payload for global shard `g`:
    /// routed to the owner like the dense path, with identical clock and
    /// staleness semantics (a sparse payload is numerically a dense push of
    /// the segments scattered into a zero gradient).
    pub fn apply_shard_update_data(
        &self,
        g: usize,
        data: UpdateData<'_>,
        lr: f64,
        momentum: f64,
    ) -> u64 {
        let server = &self.servers[self.owner[g]];
        server.apply_local_data(g - server.shard_offset(), data, lr, momentum)
    }

    /// Completes a logical push: bumps the global version and returns the
    /// push's staleness relative to `pulled_version` (race-free, from the
    /// `fetch_add` return value — as the single store does).
    pub fn complete_push(&self, pulled_version: u64) -> u64 {
        // Release: pairs with the Acquire loads in `version`/`pull_into`.
        self.version
            .fetch_add(1, Ordering::Release)
            .saturating_sub(pulled_version)
    }

    /// Runs a stage-2 round if the push counter has moved `sync_every`
    /// past the last round's watermark. Called by the asynchronous worker
    /// loops after each completed push: the worker whose push crosses the
    /// boundary performs the round; concurrent callers serialize on the
    /// round lock, and whoever runs a round advances the watermark to the
    /// version it observed, so rounds that became redundant while waiting
    /// are skipped rather than replayed.
    pub fn reconcile_if_due(&self) {
        loop {
            let synced = self.synced_version.load(Ordering::Acquire);
            if self.version() < synced.saturating_add(self.sync_every) {
                return;
            }
            let mut scratch = self.sync.lock();
            // Re-check under the lock: a concurrent worker may have run a
            // round while we waited. Loop rather than return — the counter
            // may already be a full period past the new watermark too.
            if self.synced_version.load(Ordering::Acquire) != synced {
                continue;
            }
            self.commit_round(&mut scratch);
        }
    }

    /// Drains the stage-2 pipeline: waits out any in-flight round, then
    /// unconditionally commits every shard so the committed view equals the
    /// live view. Used by the BSP barrier (every round), the switcher
    /// (before checkpointing a protocol switch), and restore. Advances the
    /// periodic watermark to the current version, so a drain never
    /// postpones (nor hastens) the next due round relative to the pushes
    /// that follow it.
    pub fn drain(&self) {
        let mut scratch = self.sync.lock();
        self.commit_round(&mut scratch);
    }

    /// One stage-2 round, caller holding the round lock: commits every
    /// owned shard on every server and advances the watermark to the
    /// version read at the start of the round (conservative — the commits
    /// include at least every apply published by those pushes).
    fn commit_round(&self, scratch: &mut Vec<f32>) {
        let observed = self.version();
        for server in &self.servers {
            server.commit_all(scratch);
        }
        self.rounds.fetch_add(1, Ordering::Release);
        // Release: publishes the committed stores' writes (ordered by
        // their shard locks) together with the watermark.
        self.synced_version.store(observed, Ordering::Release);
    }

    /// Assembles the committed view of all servers into `buf` and returns
    /// the version of the pulled data. Zero heap allocations after the
    /// first call, and a single copy of the parameter vector: each server
    /// writes its committed shards directly into the flat buffer.
    ///
    /// The returned (and recorded) version is the **effective data
    /// version** — the oldest committed shard clock, floored by the live
    /// push counter — not the live counter itself. The parameters pulled
    /// here are the committed view, which can trail the counter by up to a
    /// stage-2 period; measuring push staleness against the counter would
    /// report a worker training on `sync_every`-stale data as perfectly
    /// fresh. Against the data version, the global staleness histogram and
    /// the per-shard records agree.
    pub fn pull_committed_into(&self, buf: &mut RouterBuffer) -> u64 {
        // Acquire: see `version`.
        let version = self.version.load(Ordering::Acquire);
        buf.params.resize(self.param_count(), 0.0);
        buf.shard_versions.resize(self.shard_count(), 0);
        for server in &self.servers {
            let (po, pl) = server.param_range();
            let so = server.shard_offset();
            server.pull_committed_into(
                &mut buf.params[po..po + pl],
                &mut buf.shard_versions[so..so + server.shard_count()],
            );
        }
        // Every push applies to every shard exactly once, so a committed
        // shard clock counts the pushes published for that shard; the
        // oldest clock is the version of the stalest data in the image.
        // In-flight applies can push clocks past the completed-push
        // counter, hence the floor.
        let effective = buf
            .shard_versions
            .iter()
            .copied()
            .min()
            .unwrap_or(version)
            .min(version);
        buf.version = effective;
        effective
    }

    /// Snapshot of the full live parameter vector (authoritative state).
    /// Each server's slice is copied in place — no per-server temporaries,
    /// which matters because the switcher polls `Trainer::training_loss`
    /// (and therefore this) in its decision loop.
    pub fn snapshot_params(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count()];
        for server in &self.servers {
            let (po, pl) = server.param_range();
            server.live().snapshot_params_into(&mut out[po..po + pl]);
        }
        out
    }

    /// Snapshot of the full live velocity vector (assembled in place, as
    /// [`ShardRouter::snapshot_params`]).
    pub fn snapshot_velocity(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count()];
        for server in &self.servers {
            let (po, pl) = server.param_range();
            server.live().snapshot_velocity_into(&mut out[po..po + pl]);
        }
        out
    }

    /// Overwrites live parameters and velocity from a checkpoint, then
    /// drains so the committed view matches.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the parameter count.
    pub fn restore(&self, params: &[f32], velocity: &[f32]) {
        assert_eq!(params.len(), self.param_count(), "params length mismatch");
        assert_eq!(
            velocity.len(),
            self.param_count(),
            "velocity length mismatch"
        );
        for server in &self.servers {
            let (po, pl) = server.param_range();
            server
                .live()
                .restore(&params[po..po + pl], &velocity[po..po + pl]);
        }
        self.drain();
    }

    /// Resets the live velocity to zero on every server.
    pub fn reset_velocity(&self) {
        for server in &self.servers {
            server.live().reset_velocity();
        }
    }

    /// Whether every live parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.servers.iter().all(|s| s.live().is_finite())
    }
}

/// Reusable pull destination for the multi-server path: the assembled flat
/// committed image, the committed clock per global shard, and the
/// effective data version.
#[derive(Debug, Default)]
pub struct RouterBuffer {
    pub(crate) params: Vec<f32>,
    pub(crate) shard_versions: Vec<u64>,
    pub(crate) version: u64,
}

impl RouterBuffer {
    /// Creates an empty buffer; the first pull sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// The assembled flat parameter vector from the last pull.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Global version observed at the start of the last pull.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Committed clocks of every global shard observed during the pull.
    pub fn shard_versions(&self) -> &[u64] {
        &self.shard_versions
    }
}

/// A worker's pull destination for either topology. Constructed by
/// [`WorkerPort::new_buffer`]; the variant always matches the port.
#[derive(Debug)]
pub enum PortBuffer {
    /// Single-server: the store's own zero-alloc buffer.
    Single(PullBuffer),
    /// Multi-server (in-process or transport-backed): the assembled
    /// committed view.
    Routed(RouterBuffer),
}

impl PortBuffer {
    /// The pulled flat parameter vector.
    pub fn params(&self) -> &[f32] {
        match self {
            PortBuffer::Single(b) => b.params(),
            PortBuffer::Routed(b) => &b.params,
        }
    }

    /// Global version observed at the start of the pull.
    pub fn version(&self) -> u64 {
        match self {
            PortBuffer::Single(b) => b.version(),
            PortBuffer::Routed(b) => b.version,
        }
    }

    /// Clock of global shard `g` observed during the pull (live clock on
    /// the single store; committed clock through the router).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range for the last pulled plane.
    pub fn shard_version(&self, g: usize) -> u64 {
        match self {
            PortBuffer::Single(b) => b.shard_version(g),
            PortBuffer::Routed(b) => b.shard_versions[g],
        }
    }
}

/// A worker thread's handle onto the data plane: the single in-process
/// store, or the multi-server router. The engine's BSP/ASP/SSP loops are
/// written against this interface once and run on both topologies.
#[derive(Debug, Clone)]
pub enum WorkerPort {
    /// Direct handle to the single-server store (the PR 2 fast path —
    /// pulls read live state, no stage-2 indirection).
    Single(Arc<ShardedStore>),
    /// Handle through the in-process shard router.
    Routed(Arc<ShardRouter>),
    /// Handle through a transport-backed router: every push/pull/sync
    /// crosses the wire protocol. Cloning the port gives the new worker
    /// its own connections (connection-per-worker).
    Net(NetPort),
}

impl WorkerPort {
    /// A pull buffer of the matching variant (the transport-backed port
    /// assembles the same committed view the in-process router does, so
    /// both share the routed buffer).
    pub fn new_buffer(&self) -> PortBuffer {
        match self {
            WorkerPort::Single(_) => PortBuffer::Single(PullBuffer::new()),
            WorkerPort::Routed(_) | WorkerPort::Net(_) => PortBuffer::Routed(RouterBuffer::new()),
        }
    }

    /// Number of global shards.
    pub fn shard_count(&self) -> usize {
        match self {
            WorkerPort::Single(s) => s.shard_count(),
            WorkerPort::Routed(r) => r.shard_count(),
            WorkerPort::Net(p) => p.router().shard_count(),
        }
    }

    /// `(offset, len)` of global shard `g` in the flat vector.
    pub fn shard_range(&self, g: usize) -> (usize, usize) {
        match self {
            WorkerPort::Single(s) => s.shard_range(g),
            WorkerPort::Routed(r) => r.shard_range(g),
            WorkerPort::Net(p) => p.router().shard_range(g),
        }
    }

    /// Number of servers behind this port (1 for the single store).
    pub fn server_count(&self) -> usize {
        match self {
            WorkerPort::Single(_) => 1,
            WorkerPort::Routed(r) => r.server_count(),
            WorkerPort::Net(p) => p.router().server_count(),
        }
    }

    /// The server owning global shard `g` (0 for the single store).
    pub fn owner_of(&self, g: usize) -> usize {
        match self {
            WorkerPort::Single(_) => 0,
            WorkerPort::Routed(r) => r.owner_of(g),
            WorkerPort::Net(p) => p.router().owner_of(g),
        }
    }

    /// Pulls the worker-visible parameter image into `buf` and returns the
    /// global version observed at the start of the pull.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was created by a port of the other variant.
    pub fn pull_into(&self, buf: &mut PortBuffer) -> u64 {
        match (self, buf) {
            (WorkerPort::Single(s), PortBuffer::Single(b)) => s.pull_into(b),
            (WorkerPort::Routed(r), PortBuffer::Routed(b)) => r.pull_committed_into(b),
            (WorkerPort::Net(p), PortBuffer::Routed(b)) => p.pull_into(b),
            _ => panic!("pull buffer does not match the port topology"),
        }
    }

    /// Stage-1 apply of the gradient slice for global shard `g`; returns the
    /// owner's live shard clock before the apply.
    pub fn apply_shard_update(&self, g: usize, grad: &[f32], lr: f64, momentum: f64) -> u64 {
        match self {
            WorkerPort::Single(s) => s.apply_shard_update(g, grad, lr, momentum),
            WorkerPort::Routed(r) => r.apply_shard_update(g, grad, lr, momentum),
            WorkerPort::Net(p) => p.apply_shard_update(g, grad, lr, momentum),
        }
    }

    /// Stage-1 sparse apply for global shard `g`: only the `(start, len)`
    /// segments in `indices` carry gradient (`rows`); the rest of the shard
    /// takes the zero-gradient momentum step. In-process planes apply the
    /// payload directly ([`UpdateData::Sparse`]); a transport-backed plane
    /// ships it as a `PushShardSparse` frame, which is where the payload
    /// saving becomes real wire bytes. Clock semantics match the dense
    /// apply exactly.
    pub fn apply_shard_update_sparse(
        &self,
        g: usize,
        indices: &[(u32, u32)],
        rows: &[f32],
        lr: f64,
        momentum: f64,
    ) -> u64 {
        match self {
            WorkerPort::Single(s) => {
                s.apply_shard_update_data(g, UpdateData::Sparse { indices, rows }, lr, momentum)
            }
            WorkerPort::Routed(r) => {
                r.apply_shard_update_data(g, UpdateData::Sparse { indices, rows }, lr, momentum)
            }
            WorkerPort::Net(p) => p.apply_shard_update_sparse(g, indices, rows, lr, momentum),
        }
    }

    /// Completes a logical push and returns its global staleness.
    pub fn complete_push(&self, pulled_version: u64) -> u64 {
        match self {
            WorkerPort::Single(s) => s.complete_push(pulled_version),
            WorkerPort::Routed(r) => r.complete_push(pulled_version),
            WorkerPort::Net(p) => p.router().complete_push(pulled_version),
        }
    }

    /// Post-push hook for the asynchronous loops: runs stage-2 rounds the
    /// push counter has made due (no-op on the single store).
    pub fn after_push(&self) {
        match self {
            WorkerPort::Single(_) => {}
            WorkerPort::Routed(r) => r.reconcile_if_due(),
            WorkerPort::Net(p) => p.router().reconcile_if_due(),
        }
    }

    /// End-of-barrier hook for BSP: drains stage 2 so the next round's
    /// pulls see exactly the state this round produced (no-op on the single
    /// store, whose pulls always read live state).
    pub fn end_round(&self) {
        match self {
            WorkerPort::Single(_) => {}
            WorkerPort::Routed(r) => r.drain(),
            WorkerPort::Net(p) => p.router().drain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize, shards: usize, servers: usize, sync_every: u64) -> ShardRouter {
        let initial: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
        ShardRouter::new(&initial, shards, ServerTopology::new(servers, sync_every))
    }

    #[test]
    fn ownership_partitions_shards() {
        let r = router(103, 7, 3, 4);
        assert_eq!(r.server_count(), 3);
        assert_eq!(r.shard_count(), 7);
        // Every shard has exactly one owner and owners hold contiguous runs.
        let mut seen = vec![0usize; r.server_count()];
        for g in 0..r.shard_count() {
            seen[r.owner_of(g)] += 1;
        }
        let total: usize = r.servers().iter().map(PsServer::shard_count).sum();
        assert_eq!(total, r.shard_count());
        for (s, server) in r.servers().iter().enumerate() {
            assert_eq!(seen[s], server.shard_count());
        }
        // Param ranges tile the flat vector.
        let mut offset = 0;
        for server in r.servers() {
            let (po, pl) = server.param_range();
            assert_eq!(po, offset);
            offset += pl;
        }
        assert_eq!(offset, r.param_count());
    }

    #[test]
    fn more_servers_than_shards_clamps() {
        let r = router(16, 2, 5, 1);
        assert_eq!(r.server_count(), 2);
    }

    #[test]
    fn routed_push_equals_single_store_push() {
        let initial: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let single = ShardedStore::new(&initial, 5);
        let routed = ShardRouter::new(&initial, 5, ServerTopology::new(2, 1));
        let grad: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        for step in 0..4 {
            for g in 0..5 {
                let (o, l) = single.shard_range(g);
                assert_eq!(routed.shard_range(g), (o, l));
                single.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                routed.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
            }
            single.complete_push(step);
            routed.complete_push(step);
        }
        assert_eq!(single.version(), routed.version());
        assert_eq!(single.snapshot_params(), routed.snapshot_params());
        assert_eq!(single.snapshot_velocity(), routed.snapshot_velocity());
    }

    #[test]
    fn pulls_see_committed_view_only() {
        let r = router(24, 4, 2, 8);
        let mut buf = RouterBuffer::new();
        let before = {
            r.pull_committed_into(&mut buf);
            buf.params.clone()
        };
        // Stage-1 applies land on live stores; the committed view is
        // unchanged until a round runs.
        for g in 0..r.shard_count() {
            let (_, l) = r.shard_range(g);
            r.apply_shard_update(g, &vec![1.0; l], 0.5, 0.0);
        }
        r.complete_push(0);
        let v = r.pull_committed_into(&mut buf);
        assert_eq!(buf.params, before);
        // The recorded version is the *data* version: the image still
        // predates the push, so staleness measured against it is honest.
        assert_eq!(v, 0, "pulled version must track the committed data");
        assert_eq!(buf.version, 0);
        r.drain();
        let v = r.pull_committed_into(&mut buf);
        assert_eq!(buf.params, r.snapshot_params());
        assert_eq!(v, 1, "drained data is current");
        for g in 0..r.shard_count() {
            assert_eq!(buf.shard_versions[g], 1);
        }
    }

    #[test]
    fn reconcile_if_due_follows_the_period() {
        let r = router(24, 4, 2, 3);
        let push = |r: &ShardRouter| {
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                r.apply_shard_update(g, &vec![1.0; l], 0.1, 0.0);
            }
            let v = r.complete_push(r.version());
            r.reconcile_if_due();
            v
        };
        push(&r);
        push(&r);
        assert_eq!(r.sync_rounds(), 0, "no round before the period");
        push(&r);
        assert_eq!(r.sync_rounds(), 1, "round at the period boundary");
        let mut buf = RouterBuffer::new();
        r.pull_committed_into(&mut buf);
        for g in 0..r.shard_count() {
            assert_eq!(buf.shard_versions[g], 3);
        }
        for _ in 0..3 {
            push(&r);
        }
        assert_eq!(r.sync_rounds(), 2);
    }

    #[test]
    fn drain_does_not_starve_periodic_rounds() {
        // Regression: drains used to advance the same counter the periodic
        // schedule was derived from, so a BSP segment (one drain per
        // barrier round) pushed the next periodic round `sync_every` pushes
        // into the future per drain — a following ASP segment could run
        // with a frozen committed view for its whole length.
        let r = router(24, 4, 2, 3);
        let push = |r: &ShardRouter| {
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                r.apply_shard_update(g, &vec![1.0; l], 0.1, 0.0);
            }
            r.complete_push(r.version());
            r.reconcile_if_due();
        };
        // "BSP segment": 10 rounds, each drained at the barrier.
        for _ in 0..10 {
            push(&r);
            r.drain();
        }
        let after_bsp = r.sync_rounds();
        // "ASP segment": within one period the next round must fire.
        for _ in 0..3 {
            push(&r);
        }
        assert!(
            r.sync_rounds() > after_bsp,
            "periodic rounds starved after drains"
        );
        // And the committed view is fresh to within the period again.
        for server in r.servers() {
            for local in 0..server.shard_count() {
                assert!(server.committed_lag(local) < 3);
            }
        }
    }

    #[test]
    fn router_restore_round_trip() {
        let r = router(30, 6, 3, 2);
        for g in 0..r.shard_count() {
            let (_, l) = r.shard_range(g);
            r.apply_shard_update(g, &vec![1.0; l], 0.1, 0.9);
        }
        r.complete_push(0);
        let params = r.snapshot_params();
        let velocity = r.snapshot_velocity();
        for g in 0..r.shard_count() {
            let (_, l) = r.shard_range(g);
            r.apply_shard_update(g, &vec![5.0; l], 0.1, 0.9);
        }
        assert_ne!(r.snapshot_params(), params);
        r.restore(&params, &velocity);
        assert_eq!(r.snapshot_params(), params);
        assert_eq!(r.snapshot_velocity(), velocity);
        // Restore drains: the committed view matches immediately.
        let mut buf = RouterBuffer::new();
        r.pull_committed_into(&mut buf);
        assert_eq!(buf.params, params);
    }

    #[test]
    fn port_buffer_variants_match_ports() {
        let initial = vec![1.0f32; 16];
        let single = WorkerPort::Single(Arc::new(ShardedStore::new(&initial, 4)));
        let routed = WorkerPort::Routed(Arc::new(ShardRouter::new(
            &initial,
            4,
            ServerTopology::new(2, 1),
        )));
        for port in [&single, &routed] {
            let mut buf = port.new_buffer();
            assert_eq!(port.pull_into(&mut buf), 0);
            assert_eq!(buf.params(), &initial[..]);
            assert_eq!(buf.shard_version(3), 0);
        }
        assert_eq!(single.server_count(), 1);
        assert_eq!(routed.server_count(), 2);
        assert_eq!(single.owner_of(3), 0);
        assert_eq!(routed.owner_of(0), 0);
        assert_eq!(routed.owner_of(3), 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_buffer_panics() {
        let initial = vec![1.0f32; 8];
        let single = WorkerPort::Single(Arc::new(ShardedStore::new(&initial, 2)));
        let routed = WorkerPort::Routed(Arc::new(ShardRouter::new(
            &initial,
            2,
            ServerTopology::new(2, 1),
        )));
        let mut buf = single.new_buffer();
        routed.pull_into(&mut buf);
    }
}
