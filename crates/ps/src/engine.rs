//! The training engine: worker threads, BSP barrier, ASP async loop.
//!
//! The worker loops are written once against [`WorkerPort`], so the same
//! BSP/ASP/SSP code drives either the single in-process [`ShardedStore`] or
//! the multi-server [`crate::ShardRouter`] with OSP-style two-stage sync —
//! the topology is picked by [`TrainerConfig::topology`] at construction.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use sync_switch_nn::{Dataset, Network, Tensor};
use sync_switch_telemetry::{Counter, Histogram, LocalHistogram, Telemetry, TraceEvent, TraceKind};
use sync_switch_workloads::SyncProtocol;

use crate::checkpoint::Checkpoint;
use crate::config::{TrainerConfig, TransportKind};
use crate::error::PsError;
use crate::profiler::{
    ServerShardStaleness, ShardStaleness, StalenessHistogram, TransportStats, WorkerProfile,
};
use crate::router::{PortBuffer, ShardRouter, WorkerPort};
use crate::store::ShardedStore;
use crate::transport::{NetPort, NetRouter};

/// What each worker thread returns: its id, timing/loss profile, global
/// staleness observations, and per-server per-shard staleness observations.
pub(crate) type WorkerResult = (
    usize,
    WorkerProfile,
    StalenessHistogram,
    ServerShardStaleness,
);
/// Per-worker-thread telemetry buffer for the hot step loops.
///
/// Looking an instrument up by name locks the registry map and tracing an
/// event locks the ring — per step, across every worker thread, those two
/// mutexes (plus the cache-line traffic of shared atomics) cost more than
/// the bookkeeping they record. This buffer resolves the instruments once
/// per segment, accumulates the counter and histogram samples in plain
/// thread-local fields, and batches trace events, so between flushes the
/// hot loop touches no shared telemetry state at all.
pub(crate) struct WorkerTelemetry {
    bus: Arc<Telemetry>,
    steps_counter: Arc<Counter>,
    step_hist: Arc<Histogram>,
    staleness_hist: Arc<Histogram>,
    barrier_hist: Arc<Histogram>,
    steps: u64,
    step_local: LocalHistogram,
    staleness_local: LocalHistogram,
    barrier_local: LocalHistogram,
    events: Vec<TraceEvent>,
}

impl WorkerTelemetry {
    /// Event-buffer flush threshold: large enough to amortize the ring
    /// lock, small enough that a mid-segment scrape sees near-live events.
    const FLUSH_EVERY: usize = 128;

    pub(crate) fn new(bus: &Arc<Telemetry>) -> Self {
        WorkerTelemetry {
            steps_counter: bus.metrics.counter("engine.steps"),
            step_hist: bus.metrics.histogram("engine.step_ns"),
            staleness_hist: bus.metrics.histogram("engine.staleness"),
            barrier_hist: bus.metrics.histogram("engine.barrier_wait_ns"),
            bus: Arc::clone(bus),
            steps: 0,
            step_local: LocalHistogram::new(),
            staleness_local: LocalHistogram::new(),
            barrier_local: LocalHistogram::new(),
            events: Vec::with_capacity(Self::FLUSH_EVERY),
        }
    }

    /// Timestamp base for buffered spans, from the shared tracer's epoch.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.bus.trace.now_ns()
    }

    /// A finished step: bumps the step count, samples the busy duration,
    /// and buffers a [`TraceKind::Step`] span that started at `start_ns`
    /// and closes now.
    #[inline]
    pub(crate) fn step(&mut self, worker: usize, step: u64, start_ns: u64, busy: Duration) {
        self.steps += 1;
        self.step_local.record(busy.as_nanos() as u64);
        let dur_ns = self.now_ns().saturating_sub(start_ns).max(1);
        self.push(
            TraceKind::Step {
                worker: worker as u64,
                step,
            },
            start_ns,
            dur_ns,
        );
    }

    /// One gradient-staleness observation (ASP/SSP steps).
    #[inline]
    pub(crate) fn staleness(&mut self, v: u64) {
        self.staleness_local.record(v);
    }

    /// A barrier (or SSP gate) park that started at `start_ns`, ending now.
    #[inline]
    pub(crate) fn barrier_wait(&mut self, worker: usize, start_ns: u64) {
        let dur_ns = self.now_ns().saturating_sub(start_ns).max(1);
        self.barrier_local.record(dur_ns);
        self.push(
            TraceKind::BarrierWait {
                worker: worker as u64,
            },
            start_ns,
            dur_ns,
        );
    }

    #[inline]
    fn push(&mut self, kind: TraceKind, start_ns: u64, dur_ns: u64) {
        self.events.push(TraceEvent {
            kind,
            start_ns,
            dur_ns,
        });
        if self.events.len() >= Self::FLUSH_EVERY {
            self.bus.trace.record_batch(&mut self.events);
        }
    }

    /// Publishes everything accumulated since the last flush. Called once
    /// per worker at segment end — a panicking worker flushes whatever it
    /// buffered before the unwind, so post-mortem traces keep the tail.
    pub(crate) fn flush(&mut self) {
        if self.steps > 0 {
            self.steps_counter.add(self.steps);
            self.steps = 0;
        }
        self.step_local.flush_into(&self.step_hist);
        self.staleness_local.flush_into(&self.staleness_hist);
        self.barrier_local.flush_into(&self.barrier_hist);
        self.bus.trace.record_batch(&mut self.events);
    }
}

/// Pushes a full gradient shard-by-shard against the clocks captured in
/// `buf`, recording one per-shard staleness observation per shard (under
/// the owning server), then completes the push, runs any stage-2 round the
/// push made due, and returns the push's global staleness. Shared by the
/// ASP and SSP worker loops so the two protocols measure staleness
/// identically.
pub(crate) fn push_sharded(
    port: &WorkerPort,
    grad: &[f32],
    buf: &PortBuffer,
    lr: f64,
    momentum: f64,
    shard_hist: &mut ServerShardStaleness,
) -> u64 {
    for i in 0..port.shard_count() {
        let (offset, len) = port.shard_range(i);
        let prev = port.apply_shard_update(i, &grad[offset..offset + len], lr, momentum);
        shard_hist.record(
            port.owner_of(i),
            i,
            prev.saturating_sub(buf.shard_version(i)),
        );
    }
    let staleness = port.complete_push(buf.version());
    port.after_push();
    staleness
}

/// Pushes a worker's gradient through the dense or the sparse path — the
/// single dispatch point shared by the ASP and SSP loops, so the two
/// protocols cannot drift on push selection: sparse when the config allows
/// it *and* the model's last backward reported sparse nonzero runs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_maybe_sparse(
    port: &WorkerPort,
    model: &Network,
    grad: &[f32],
    sparse_enabled: bool,
    scratch: &mut SparseScratch,
    buf: &PortBuffer,
    lr: f64,
    momentum: f64,
    shard_hist: &mut ServerShardStaleness,
) -> u64 {
    if sparse_enabled && model.grad_nonzero_runs_into(&mut scratch.runs) {
        push_sharded_sparse(port, grad, scratch, buf, lr, momentum, shard_hist)
    } else {
        push_sharded(port, grad, buf, lr, momentum, shard_hist)
    }
}

/// Per-worker scratch for the sparse push path. All three vectors are
/// reused across steps, so the steady state allocates nothing beyond what
/// the dense path already does.
#[derive(Debug, Default)]
pub(crate) struct SparseScratch {
    /// Global `(offset, len)` runs of the model's possibly-nonzero
    /// gradient, filled by `Network::grad_nonzero_runs_into`.
    pub(crate) runs: Vec<(usize, usize)>,
    /// Shard-relative segments of the shard currently being pushed.
    spans: Vec<(u32, u32)>,
    /// The segments' gradient values, gathered from the flat gradient.
    values: Vec<f32>,
}

/// The sparse counterpart of [`push_sharded`]: walks the shards in order,
/// intersects the model's nonzero runs (`scratch.runs`, sorted and
/// disjoint) with each shard's range, and pushes only the overlapping
/// segments. A shard fully covered by one run falls back to the dense apply
/// (no gather, no segment list); a shard with no overlap still pushes an
/// empty sparse update so its clock ticks and its momentum decays exactly
/// as a dense zero push would. Every invariant of the dense path —
/// per-shard staleness observations, global staleness, stage-2 scheduling —
/// is preserved because the apply itself is numerically identical.
pub(crate) fn push_sharded_sparse(
    port: &WorkerPort,
    grad: &[f32],
    scratch: &mut SparseScratch,
    buf: &PortBuffer,
    lr: f64,
    momentum: f64,
    shard_hist: &mut ServerShardStaleness,
) -> u64 {
    // Shards iterate in flat order, so a single cursor over the sorted
    // runs suffices (no per-shard rescans).
    let mut first_run = 0usize;
    for i in 0..port.shard_count() {
        let (offset, len) = port.shard_range(i);
        let end = offset + len;
        // Runs entirely before this shard are done for good.
        while first_run < scratch.runs.len() {
            let (ro, rl) = scratch.runs[first_run];
            if ro + rl <= offset {
                first_run += 1;
            } else {
                break;
            }
        }
        scratch.spans.clear();
        scratch.values.clear();
        let mut full_cover = false;
        for &(ro, rl) in &scratch.runs[first_run..] {
            if ro >= end {
                break;
            }
            let start = ro.max(offset);
            let stop = (ro + rl).min(end);
            if start == offset && stop == end {
                full_cover = true;
                break;
            }
            scratch
                .spans
                .push(((start - offset) as u32, (stop - start) as u32));
            scratch.values.extend_from_slice(&grad[start..stop]);
        }
        let prev = if full_cover {
            port.apply_shard_update(i, &grad[offset..end], lr, momentum)
        } else {
            port.apply_shard_update_sparse(i, &scratch.spans, &scratch.values, lr, momentum)
        };
        shard_hist.record(
            port.owner_of(i),
            i,
            prev.saturating_sub(buf.shard_version(i)),
        );
    }
    let staleness = port.complete_push(buf.version());
    port.after_push();
    staleness
}

/// The parameter-server data plane behind a trainer: the control-plane
/// face of the same store/router pair workers reach through [`WorkerPort`].
/// Wrapping the port (rather than mirroring its enum) keeps the dispatch in
/// one place while still keeping owner-only operations — snapshot, restore,
/// drain — off the worker-facing type.
#[derive(Debug)]
pub(crate) struct DataPlane(WorkerPort);

impl DataPlane {
    fn from_config(initial: &[f32], cfg: &TrainerConfig) -> Self {
        // A wire transport puts the tier behind the message boundary even
        // with one server — the boundary is the point. In-process keeps the
        // PR 3 rule: decide on the *effective* server count (the router
        // clamps servers to the shard count, and shards to the parameter
        // count); a topology that clamps down to one server must get the
        // single-store fast path, not two-stage committed-view semantics
        // with one owner.
        if cfg.topology.transport != TransportKind::InProcess {
            return DataPlane(WorkerPort::Net(NetPort::launch(
                initial,
                cfg.shards,
                cfg.topology,
            )));
        }
        let effective_servers = cfg.topology.servers.min(cfg.shards).min(initial.len());
        DataPlane(if effective_servers > 1 {
            WorkerPort::Routed(Arc::new(ShardRouter::new(
                initial,
                cfg.shards,
                cfg.topology,
            )))
        } else {
            WorkerPort::Single(Arc::new(ShardedStore::new(initial, cfg.shards)))
        })
    }

    pub(crate) fn port(&self) -> WorkerPort {
        self.0.clone()
    }

    fn shard_count(&self) -> usize {
        self.0.shard_count()
    }

    fn server_count(&self) -> usize {
        self.0.server_count()
    }

    fn param_count(&self) -> usize {
        match &self.0 {
            WorkerPort::Single(s) => s.param_count(),
            WorkerPort::Routed(r) => r.param_count(),
            WorkerPort::Net(p) => p.router().param_count(),
        }
    }

    fn version(&self) -> u64 {
        match &self.0 {
            WorkerPort::Single(s) => s.version(),
            WorkerPort::Routed(r) => r.version(),
            WorkerPort::Net(p) => p.router().version(),
        }
    }

    fn snapshot_params(&self) -> Vec<f32> {
        match &self.0 {
            WorkerPort::Single(s) => s.snapshot_params(),
            WorkerPort::Routed(r) => r.snapshot_params(),
            WorkerPort::Net(p) => p.router().snapshot_params(),
        }
    }

    fn snapshot_velocity(&self) -> Vec<f32> {
        match &self.0 {
            WorkerPort::Single(s) => s.snapshot_velocity(),
            WorkerPort::Routed(r) => r.snapshot_velocity(),
            WorkerPort::Net(p) => p.router().snapshot_velocity(),
        }
    }

    fn restore(&self, params: &[f32], velocity: &[f32]) {
        match &self.0 {
            WorkerPort::Single(s) => s.restore(params, velocity),
            WorkerPort::Routed(r) => r.restore(params, velocity),
            WorkerPort::Net(p) => p.router().restore(params, velocity),
        }
    }

    fn reset_velocity(&self) {
        match &self.0 {
            WorkerPort::Single(s) => s.reset_velocity(),
            WorkerPort::Routed(r) => r.reset_velocity(),
            WorkerPort::Net(p) => p.router().reset_velocity(),
        }
    }

    fn is_finite(&self) -> bool {
        match &self.0 {
            WorkerPort::Single(s) => s.is_finite(),
            WorkerPort::Routed(r) => r.is_finite(),
            WorkerPort::Net(p) => p.router().is_finite(),
        }
    }

    fn drain(&self) {
        match &self.0 {
            WorkerPort::Single(_) => {}
            WorkerPort::Routed(r) => r.drain(),
            WorkerPort::Net(p) => p.router().drain(),
        }
    }

    fn sync_rounds(&self) -> u64 {
        match &self.0 {
            WorkerPort::Single(_) => 0,
            WorkerPort::Routed(r) => r.sync_rounds(),
            WorkerPort::Net(p) => p.router().sync_rounds(),
        }
    }

    /// Cumulative wire counters (all-zero with no wire boundary).
    pub(crate) fn transport_stats(&self) -> TransportStats {
        match &self.0 {
            WorkerPort::Single(_) | WorkerPort::Routed(_) => TransportStats::default(),
            WorkerPort::Net(p) => p.router().stats(),
        }
    }
}

/// Outcome of one training segment (a run of consecutive steps under a
/// single protocol and configuration).
#[derive(Debug)]
pub struct SegmentReport {
    /// Protocol the segment ran under.
    pub protocol: SyncProtocol,
    /// Number of global steps completed.
    pub steps: u64,
    /// Wall-clock duration of the segment.
    pub wall_time: Duration,
    /// Per-worker profiles, indexed by worker id (excluded workers have
    /// empty profiles).
    pub worker_profiles: Vec<WorkerProfile>,
    /// Measured gradient staleness across all pushes.
    pub staleness: StalenessHistogram,
    /// Measured staleness per parameter shard, from the per-shard version
    /// clocks (one observation per shard apply; all zeros under BSP, where
    /// a stripe is applied exactly once per barrier round).
    pub shard_staleness: ShardStaleness,
    /// The same observations broken out per owning server — under a
    /// multi-server topology this is where the per-shard-per-server SSP
    /// bound is visible (single-server segments put everything on server 0).
    pub server_shard_staleness: ServerShardStaleness,
    /// Stage-2 reconciliation rounds completed during the segment (0 on a
    /// single-server plane).
    pub sync_rounds: u64,
    /// Wire cost of the segment on a transport-backed data plane (all
    /// zeros, `backend == None`, when the tier is in-process).
    pub transport: TransportStats,
    /// Whether every live parameter was finite when the segment ended —
    /// the post-segment [`Trainer::check_finite`] result, surfaced so
    /// switching policies (and the divergence watchdog) can react without
    /// a second wire round trip. An `Ok` engine segment implies `true`;
    /// SSP segments report the observed check.
    pub finite: bool,
    /// Mean training loss over the last few recorded steps.
    pub final_loss: f32,
}

impl SegmentReport {
    /// Cluster throughput in steps per second.
    pub fn steps_per_sec(&self) -> f64 {
        if self.wall_time.is_zero() {
            return 0.0;
        }
        self.steps as f64 / self.wall_time.as_secs_f64()
    }
}

/// State shared by BSP workers: striped per-shard accumulators plus the
/// round barrier.
///
/// Each stripe maps 1:1 onto a store shard and carries its own lock, so
/// workers aggregating different stripes proceed concurrently instead of
/// funnelling every gradient through one global accumulator mutex. The last
/// contributor to a stripe applies that stripe's averaged update to its
/// shard; the worker that applies the last outstanding stripe completes the
/// push and advances the round.
struct BspShared {
    stripes: Vec<Mutex<Stripe>>,
    /// Completed barrier rounds; guarded by a mutex because the condvar
    /// waiters key off it.
    round: Mutex<u64>,
    cv: Condvar,
    /// Stripes applied in the current round.
    applied: AtomicUsize,
}

/// One stripe's accumulation state for the in-flight round.
struct Stripe {
    accum: Vec<f32>,
    count: usize,
}

/// Everything a worker thread needs.
struct WorkerCtx {
    port: WorkerPort,
    abort: Arc<AtomicBool>,
    diverged_at: Arc<AtomicU64>,
}

/// A parameter-server trainer over one model and one dataset, supporting
/// consecutive segments under different protocols and configurations — the
/// substrate Sync-Switch's policies act on.
pub struct Trainer {
    template: Network,
    shards: Vec<Dataset>,
    test: Dataset,
    cfg: TrainerConfig,
    plane: DataPlane,
    /// The telemetry bus (metrics + event trace) every layer of this
    /// trainer records into, `None` when [`TrainerConfig::telemetry`] is
    /// off. On a transport-backed plane the same bus is installed on the
    /// [`NetRouter`], so wire retries and sync rounds land next to the
    /// engine's step spans.
    telemetry: Option<Arc<Telemetry>>,
    global_step: u64,
    /// The synchronization protocol currently in effect: set at
    /// construction (BSP — the safe default every run starts from), by
    /// [`crate::switcher::execute_switch`] applying a plan's target, and by
    /// every explicit [`Trainer::run_segment`] call (an implicit switch).
    /// [`Trainer::run_current_segment`] runs whatever this records, so a
    /// switch plan can never silently disagree with the segment after it.
    protocol: SyncProtocol,
    /// Deterministic probe batch for [`Trainer::training_loss`] (first
    /// shard, fixed indices) — built once, because the switcher polls the
    /// probe loss inside its decision loop.
    probe_batch: (Tensor, Vec<usize>),
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("workers", &self.cfg.workers)
            .field("servers", &self.plane.server_count())
            .field("params", &self.plane.param_count())
            .field("global_step", &self.global_step)
            .finish()
    }
}

impl Trainer {
    /// Creates a trainer: shards `train` across the configured workers and
    /// initializes the parameter store from the model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TrainerConfig::validate`]) or the dataset is smaller than the
    /// worker count.
    pub fn new(model: Network, train: Dataset, test: Dataset, cfg: TrainerConfig) -> Self {
        if let Err(msg) = cfg.validate() {
            panic!("invalid trainer config: {msg}");
        }
        let shards: Vec<Dataset> = (0..cfg.workers)
            .map(|k| train.shard(k, cfg.workers))
            .collect();
        let initial = model.params_flat();
        let plane = DataPlane::from_config(&initial, &cfg);
        let telemetry = Self::build_telemetry(&cfg, &plane);
        let probe_n = shards[0].len().min(64);
        let probe_idx: Vec<usize> = (0..probe_n).collect();
        let probe_batch = shards[0].batch(&probe_idx);
        Trainer {
            template: model,
            shards,
            test,
            cfg,
            plane,
            telemetry,
            global_step: 0,
            protocol: SyncProtocol::Bsp,
            probe_batch,
        }
    }

    /// Creates a trainer on an *existing* data plane instead of building
    /// one from the config — the cross-process entry point: a `ps-worker`
    /// process connects a [`NetPort`] to its `ps-serve` tier (which already
    /// holds the initial parameters, every process having built the same
    /// seeded model) and drives the same BSP/ASP/SSP loops over it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the dataset is smaller than
    /// the worker count, or the port's parameter count differs from the
    /// model's — the one cross-process layout disagreement a worker can
    /// detect locally.
    pub fn with_port(
        model: Network,
        train: Dataset,
        test: Dataset,
        cfg: TrainerConfig,
        port: WorkerPort,
    ) -> Self {
        if let Err(msg) = cfg.validate() {
            panic!("invalid trainer config: {msg}");
        }
        let plane = DataPlane(port);
        assert_eq!(
            plane.param_count(),
            model.params_flat().len(),
            "data plane parameter count does not match the model"
        );
        let telemetry = Self::build_telemetry(&cfg, &plane);
        let shards: Vec<Dataset> = (0..cfg.workers)
            .map(|k| train.shard(k, cfg.workers))
            .collect();
        let probe_n = shards[0].len().min(64);
        let probe_idx: Vec<usize> = (0..probe_n).collect();
        let probe_batch = shards[0].batch(&probe_idx);
        Trainer {
            template: model,
            shards,
            test,
            cfg,
            plane,
            telemetry,
            global_step: 0,
            protocol: SyncProtocol::Bsp,
            probe_batch,
        }
    }

    /// Builds the trainer's telemetry bus (if enabled) and installs it on
    /// the data plane's wire router, so router-level events — push retries,
    /// sync rounds, server kills/heals — share a clock and a trace with the
    /// engine's step spans.
    fn build_telemetry(cfg: &TrainerConfig, plane: &DataPlane) -> Option<Arc<Telemetry>> {
        if !cfg.telemetry {
            return None;
        }
        let telemetry = Arc::new(Telemetry::new());
        if let WorkerPort::Net(p) = &plane.0 {
            p.router().set_telemetry(Arc::clone(&telemetry));
        }
        Some(telemetry)
    }

    /// The current configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Replaces the configuration (between segments — the configuration
    /// actuator of paper Fig. 9).
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] if the new configuration is
    /// inconsistent or changes the worker count (shards are fixed at
    /// construction).
    pub fn set_config(&mut self, cfg: TrainerConfig) -> Result<(), PsError> {
        cfg.validate().map_err(PsError::InvalidConfig)?;
        if cfg.workers != self.cfg.workers {
            return Err(PsError::InvalidConfig(
                "worker count is fixed at construction".into(),
            ));
        }
        if cfg.topology != self.cfg.topology {
            return Err(PsError::InvalidConfig(
                "server topology is fixed at construction".into(),
            ));
        }
        self.cfg = cfg;
        Ok(())
    }

    /// Total global steps completed so far.
    pub fn global_step(&self) -> u64 {
        self.global_step
    }

    /// The synchronization protocol currently in effect — what
    /// [`Trainer::run_current_segment`] would run. Updated by
    /// [`crate::switcher::execute_switch`] (the plan's target) and by every
    /// explicit [`Trainer::run_segment`] call.
    pub fn protocol(&self) -> SyncProtocol {
        self.protocol
    }

    /// Records a protocol change (crate-internal: the switcher applies a
    /// plan's target here, the SSP runner tags itself as ASP).
    pub(crate) fn set_protocol(&mut self, protocol: SyncProtocol) {
        self.protocol = protocol;
    }

    /// Runs `steps` global steps under the protocol recorded on the
    /// trainer (see [`Trainer::protocol`]) — the form switch-driven callers
    /// should use, so an executed [`crate::switcher::SwitchPlan`] cannot
    /// disagree with the segment that follows it.
    ///
    /// # Errors
    ///
    /// As [`Trainer::run_segment`].
    pub fn run_current_segment(&mut self, steps: u64) -> Result<SegmentReport, PsError> {
        self.run_segment(self.protocol, steps)
    }

    /// The shared parameter store of a **single-server, in-process**
    /// trainer.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::NoSingleStore`] when the data plane is a
    /// multi-server tier (or any transport-backed tier) — there is no
    /// single store then; use [`Trainer::router`],
    /// [`Trainer::net_router`], the snapshot APIs, or the segment reports
    /// instead.
    ///
    /// # Example
    ///
    /// ```
    /// use sync_switch_nn::{Dataset, Network};
    /// use sync_switch_ps::{Trainer, TrainerConfig};
    ///
    /// let data = Dataset::gaussian_blobs(3, 40, 5, 0.3, 1);
    /// let (train, test) = data.split(0.25);
    /// let trainer = Trainer::new(
    ///     Network::mlp(5, &[8], 3, 1),
    ///     train,
    ///     test,
    ///     TrainerConfig::new(2, 8, 0.05, 0.9),
    /// );
    /// // Single-server plane: the accessor succeeds. On a multi-server or
    /// // wire-backed topology it returns Err(PsError::NoSingleStore)
    /// // instead of panicking — match on it or use the snapshot APIs.
    /// let store = trainer.store().expect("single-server plane");
    /// assert_eq!(store.version(), 0);
    /// ```
    pub fn store(&self) -> Result<&ShardedStore, PsError> {
        match &self.plane.0 {
            WorkerPort::Single(s) => Ok(s),
            WorkerPort::Routed(_) | WorkerPort::Net(_) => Err(PsError::NoSingleStore {
                servers: self.plane.server_count(),
            }),
        }
    }

    /// The shard router of a **multi-server in-process** trainer (`None`
    /// when the plane is a single store or behind a wire transport).
    pub fn router(&self) -> Option<&ShardRouter> {
        match &self.plane.0 {
            WorkerPort::Single(_) | WorkerPort::Net(_) => None,
            WorkerPort::Routed(r) => Some(r),
        }
    }

    /// The transport-backed router of a trainer whose topology selected the
    /// channel or TCP backend (`None` on an in-process plane).
    pub fn net_router(&self) -> Option<&NetRouter> {
        match &self.plane.0 {
            WorkerPort::Single(_) | WorkerPort::Routed(_) => None,
            WorkerPort::Net(p) => Some(p.router()),
        }
    }

    /// The telemetry bus this trainer records into (`None` when disabled
    /// via [`TrainerConfig::telemetry`]). Harnesses read metrics snapshots
    /// and export Chrome traces from here; the watchdog and supervisor
    /// record their events into the same bus.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Cumulative wire-cost counters of the data plane since construction
    /// (all zeros, `backend == None`, on an in-process plane). Per-segment
    /// costs are on [`SegmentReport::transport`].
    pub fn transport_stats(&self) -> TransportStats {
        self.plane.transport_stats()
    }

    /// Number of parameter servers in the data plane (1 for the single
    /// in-process store).
    pub fn server_count(&self) -> usize {
        self.plane.server_count()
    }

    /// Cluster-global push count (the data-plane version clock).
    pub fn push_count(&self) -> u64 {
        self.plane.version()
    }

    /// Stage-2 reconciliation rounds completed so far (0 on a
    /// single-server plane).
    pub fn sync_rounds(&self) -> u64 {
        self.plane.sync_rounds()
    }

    /// Drains any in-flight stage-2 reconciliation so the committed view
    /// every worker pulls equals the live state. No-op on a single-server
    /// plane; called by the switcher before checkpointing a protocol
    /// switch.
    pub fn drain_sync(&self) {
        self.plane.drain();
    }

    /// Resets the optimizer velocity to zero on every server.
    pub fn reset_velocity(&self) {
        self.plane.reset_velocity();
    }

    /// Whether every parameter on every server is currently finite — the
    /// segment runner checks this after each push internally; this exposes
    /// the same probe to harnesses that want to assert it between segments.
    pub fn check_finite(&self) -> bool {
        self.plane.is_finite()
    }

    /// A worker-facing port onto the data plane (crate-internal: SSP
    /// extension).
    pub(crate) fn port(&self) -> WorkerPort {
        self.plane.port()
    }

    /// Worker `w`'s data shard (crate-internal: SSP extension).
    pub(crate) fn shard(&self, worker: usize) -> &Dataset {
        &self.shards[worker]
    }

    /// The template network (crate-internal: SSP extension).
    pub(crate) fn model_template(&self) -> &Network {
        &self.template
    }

    /// Advances the global step counter (crate-internal: SSP extension).
    pub(crate) fn advance_global_step(&mut self, steps: u64) {
        self.global_step += steps;
    }

    /// Takes a checkpoint of the current training state (the live,
    /// authoritative parameters — a concurrent stage-2 round cannot make
    /// this observe unpublished data, only the owners are read).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::new(
            self.global_step,
            self.plane.snapshot_params(),
            self.plane.snapshot_velocity(),
        )
    }

    /// Restores training state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::CheckpointMismatch`] if the checkpoint shape does
    /// not match the model.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), PsError> {
        ck.check_compatible(self.plane.param_count())?;
        self.plane.restore(&ck.params, &ck.velocity);
        self.global_step = ck.step;
        Ok(())
    }

    /// Evaluates top-1 accuracy on the held-out test set using the current
    /// parameters.
    pub fn evaluate(&self) -> f64 {
        let params = self.plane.snapshot_params();
        let mut model = self.template.clone();
        model.set_params_flat(&params);
        model.accuracy_on(self.test.features(), self.test.labels())
    }

    /// Training loss of the current parameters on a deterministic probe
    /// batch (first shard, fixed indices; cached at construction so the
    /// switcher's polling loop does not rebuild it every call).
    pub fn training_loss(&self) -> f32 {
        let params = self.plane.snapshot_params();
        let mut model = self.template.clone();
        model.set_params_flat(&params);
        let (x, y) = &self.probe_batch;
        model.loss(x, y)
    }

    /// Runs `steps` global steps under `protocol`, returning the segment
    /// report.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::Diverged`] if any worker observes a non-finite or
    /// above-threshold loss (all workers are aborted),
    /// [`PsError::InvalidConfig`] for impossible configurations, and
    /// [`PsError::WorkerPanicked`] if a worker thread died mid-segment —
    /// on a transport-backed plane that is how an unreachable server
    /// surfaces (the infallible data-path ops panic once retries are
    /// exhausted), so a `ps-worker` catches it, waits out the respawn via
    /// [`crate::ServerSupervisor::heal_respawned`], restores its segment
    /// checkpoint, and re-runs the segment.
    pub fn run_segment(
        &mut self,
        protocol: SyncProtocol,
        steps: u64,
    ) -> Result<SegmentReport, PsError> {
        // An explicit protocol argument is an implicit switch: record it so
        // `Trainer::protocol()` always names the discipline that last ran.
        self.protocol = protocol;
        if steps == 0 {
            return Ok(SegmentReport {
                protocol,
                steps: 0,
                wall_time: Duration::ZERO,
                worker_profiles: vec![WorkerProfile::default(); self.cfg.workers],
                staleness: StalenessHistogram::new(),
                shard_staleness: ShardStaleness::new(self.plane.shard_count()),
                server_shard_staleness: ServerShardStaleness::new(
                    self.plane.server_count(),
                    self.plane.shard_count(),
                ),
                sync_rounds: 0,
                transport: {
                    let s = self.plane.transport_stats();
                    s.delta(&s)
                },
                finite: true,
                final_loss: 0.0,
            });
        }
        let active = self.cfg.active_workers();
        if active.is_empty() {
            return Err(PsError::InvalidConfig("all workers excluded".into()));
        }

        let ctx = WorkerCtx {
            port: self.plane.port(),
            abort: Arc::new(AtomicBool::new(false)),
            diverged_at: Arc::new(AtomicU64::new(u64::MAX)),
        };

        let rounds_before = self.plane.sync_rounds();
        let wire_before = self.plane.transport_stats();
        let start = Instant::now();
        let results: Vec<WorkerResult> = match protocol {
            SyncProtocol::Bsp => self.run_bsp(&ctx, &active, steps)?,
            SyncProtocol::Asp => self.run_asp(&ctx, &active, steps)?,
        };
        let wall_time = start.elapsed();

        // Relaxed: the worker threads were joined inside run_bsp/run_asp's
        // thread scope, and joining synchronizes-with everything they wrote.
        let diverged = ctx.diverged_at.load(Ordering::Relaxed);
        if diverged != u64::MAX {
            return Err(PsError::Diverged { step: diverged });
        }
        let finite = self.plane.is_finite();
        if !finite {
            return Err(PsError::Diverged {
                step: self.global_step + steps,
            });
        }

        let mut profiles = vec![WorkerProfile::default(); self.cfg.workers];
        let mut staleness = StalenessHistogram::new();
        let mut server_shard_staleness =
            ServerShardStaleness::new(self.plane.server_count(), self.plane.shard_count());
        let mut tail_losses = Vec::new();
        for (worker, profile, hist, shard_hist) in results {
            staleness.merge(&hist);
            server_shard_staleness.merge(&shard_hist);
            tail_losses.extend(profile.losses.iter().rev().take(4).copied());
            profiles[worker] = profile;
        }
        let final_loss = if tail_losses.is_empty() {
            0.0
        } else {
            tail_losses.iter().sum::<f32>() / tail_losses.len() as f32
        };

        self.global_step += steps;
        Ok(SegmentReport {
            protocol,
            steps,
            wall_time,
            worker_profiles: profiles,
            staleness,
            shard_staleness: server_shard_staleness.flatten(),
            server_shard_staleness,
            sync_rounds: self.plane.sync_rounds() - rounds_before,
            transport: self.plane.transport_stats().delta(&wire_before),
            finite,
            final_loss,
        })
    }

    /// BSP: lock-step rounds; gradients averaged at a striped barrier, one
    /// logical update per round.
    ///
    /// Aggregation is striped per store shard: workers walk the stripes
    /// starting at their own offset, so at any instant different workers
    /// are summing into different stripes under different locks. The last
    /// contributor to a stripe averages and applies it immediately; the
    /// worker that applies the final outstanding stripe completes the push
    /// and releases the barrier. Numerically this is the same
    /// sum-then-average-then-apply as the old single-mutex accumulator
    /// (per-stripe sums commute across workers exactly like the global sum
    /// did), so BSP keeps its bit-for-bit agreement with sequential
    /// large-batch SGD up to f32 summation order.
    fn run_bsp(
        &self,
        ctx: &WorkerCtx,
        active: &[usize],
        rounds: u64,
    ) -> Result<Vec<WorkerResult>, PsError> {
        let n_active = active.len();
        let n_stripes = self.plane.shard_count();
        let n_servers = self.plane.server_count();
        let stripes = (0..n_stripes)
            .map(|i| {
                let (_, len) = ctx.port.shard_range(i);
                Mutex::new(Stripe {
                    accum: vec![0.0; len],
                    count: 0,
                })
            })
            .collect();
        let shared = Arc::new(BspShared {
            stripes,
            round: Mutex::new(0),
            cv: Condvar::new(),
            applied: AtomicUsize::new(0),
        });
        let cfg = &self.cfg;
        let base_step = self.global_step;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_active);
            for (rank, &worker) in active.iter().enumerate() {
                let shared = Arc::clone(&shared);
                let port = ctx.port.clone();
                let abort = Arc::clone(&ctx.abort);
                let diverged_at = Arc::clone(&ctx.diverged_at);
                let shard = &self.shards[worker];
                let mut model = self.template.clone();
                let delay = cfg.straggler_delay[worker];
                let batch = cfg.per_worker_batch;
                let (lr, mu) = (cfg.learning_rate, cfg.momentum);
                let seed = cfg.seed;
                let threshold = cfg.divergence_loss_threshold;
                let telemetry = self.telemetry.clone();
                handles.push(scope.spawn(move || {
                    let mut profile = WorkerProfile::default();
                    let mut hist = StalenessHistogram::new();
                    let mut shard_hist = ServerShardStaleness::new(n_servers, n_stripes);
                    let mut buf = port.new_buffer();
                    let mut wt = telemetry.as_ref().map(WorkerTelemetry::new);
                    // First-step start, for the wall-clock throughput span
                    // (barrier waits included — the busy-only rate hides
                    // them; see `WorkerProfile::wall_steps_per_sec`).
                    let mut wall_start: Option<Instant> = None;
                    // Panics here are a dying data plane (the infallible
                    // data-path ops panic once wire retries are exhausted,
                    // e.g. against a SIGKILLed `ps-serve`). Catch them so
                    // the segment returns `WorkerPanicked` instead of
                    // tearing the process down — and set abort + notify so
                    // peers parked at the round barrier wake up and exit
                    // instead of waiting for a round that will never
                    // complete.
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for r in 0..rounds {
                            // Relaxed: abort is a latest-wins flag; the data it
                            // guards (diverged_at) is read after thread join.
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let t0 = Instant::now();
                            wall_start.get_or_insert(t0);
                            let step_ns = wt.as_ref().map_or(0, |w| w.now_ns());
                            let version = port.pull_into(&mut buf);
                            model.set_params_flat(buf.params());
                            let mut rng = step_rng(seed, worker, base_step + r);
                            let (x, y) = shard.sample_batch(batch, &mut rng);
                            if let Some(d) = delay {
                                std::thread::sleep(d);
                            }
                            let (loss, grad) = model.loss_and_grad(&x, &y);
                            let compute_time = t0.elapsed();
                            if !loss.is_finite() || loss > threshold {
                                // Relaxed: both reads happen after join (or
                                // behind the round mutex below).
                                diverged_at.store(base_step + r, Ordering::Relaxed);
                                abort.store(true, Ordering::Relaxed);
                                // Lock-then-notify so a waiter cannot check the
                                // abort flag, miss it, and park after this
                                // notification (the classic lost-wakeup race).
                                let _round = shared.round.lock();
                                shared.cv.notify_all();
                                break;
                            }
                            profile.step_durations.push(compute_time);
                            profile.losses.push(loss);
                            hist.record(0); // BSP gradients are fresh by construction

                            // Striped barrier: contribute each stripe, starting
                            // at this worker's offset so concurrent workers sum
                            // into disjoint stripes. Last contributor per
                            // stripe averages and applies it.
                            for k in 0..n_stripes {
                                let i = (rank + k) % n_stripes;
                                let (offset, len) = port.shard_range(i);
                                let mut stripe = shared.stripes[i].lock();
                                let state = &mut *stripe;
                                for (a, g) in
                                    state.accum.iter_mut().zip(&grad[offset..offset + len])
                                {
                                    *a += g;
                                }
                                state.count += 1;
                                if state.count == n_active {
                                    let scale = 1.0 / n_active as f32;
                                    state.accum.iter_mut().for_each(|a| *a *= scale);
                                    let prev = port.apply_shard_update(i, &state.accum, lr, mu);
                                    shard_hist.record(
                                        port.owner_of(i),
                                        i,
                                        prev.saturating_sub(buf.shard_version(i)),
                                    );
                                    state.accum.iter_mut().for_each(|a| *a = 0.0);
                                    state.count = 0;
                                    drop(stripe);
                                    // AcqRel: the final applier must observe the
                                    // other appliers' increments (Acquire) and
                                    // publish its own apply before the round
                                    // advance (Release); the shard data itself
                                    // is ordered by the shard mutexes.
                                    if shared.applied.fetch_add(1, Ordering::AcqRel) + 1
                                        == n_stripes
                                    {
                                        port.complete_push(version);
                                        // Stage-2 drain: publish this round's
                                        // applies to every server's committed
                                        // view before any worker can pull the
                                        // next round (everyone else is parked
                                        // at the barrier below, so the commit
                                        // cannot race a pull).
                                        port.end_round();
                                        let mut round = shared.round.lock();
                                        // Relaxed: reset is published to the
                                        // next round's appliers by the round
                                        // mutex they must pass through first.
                                        shared.applied.store(0, Ordering::Relaxed);
                                        *round += 1;
                                        shared.cv.notify_all();
                                    }
                                }
                            }

                            // The step span closes once this worker's
                            // contributions (and any stripes it applied) are
                            // in — the barrier wait is traced separately.
                            if let Some(w) = wt.as_mut() {
                                w.step(worker, base_step + r, step_ns, compute_time);
                            }

                            // Barrier wait: every pull of round r completes
                            // before any stripe of round r is applied (a stripe
                            // needs all contributions, and contributing implies
                            // having pulled), so BSP pulls are never torn.
                            let wait_ns = wt.as_ref().map_or(0, |w| w.now_ns());
                            {
                                let mut round = shared.round.lock();
                                while *round <= r && !abort.load(Ordering::Relaxed) {
                                    shared.cv.wait(&mut round);
                                }
                            }
                            if let Some(w) = wt.as_mut() {
                                w.barrier_wait(worker, wait_ns);
                            }
                            // The round is only delivered once the barrier
                            // releases, so the wall span includes the wait.
                            if let Some(ws) = wall_start {
                                profile.wall_time = ws.elapsed();
                            }
                        }
                    }));
                    if let Some(w) = wt.as_mut() {
                        w.flush();
                    }
                    match run {
                        Ok(()) => Ok((worker, profile, hist, shard_hist)),
                        Err(_payload) => {
                            abort.store(true, Ordering::Relaxed);
                            // Lock-then-notify, as in the divergence path,
                            // so a waiter cannot miss the wakeup.
                            let _round = shared.round.lock();
                            shared.cv.notify_all();
                            Err(worker)
                        }
                    }
                }));
            }
            collect_worker_results(handles)
        })
    }

    /// ASP: workers claim global steps and apply updates immediately.
    ///
    /// The hot path is allocation-free in the steady state: each worker
    /// reuses one [`PullBuffer`] for every pull and pushes its gradient
    /// shard-by-shard, measuring per-shard staleness against the clocks
    /// captured at pull time instead of sweeping all shard locks inside one
    /// monolithic `apply_update` call.
    fn run_asp(
        &self,
        ctx: &WorkerCtx,
        active: &[usize],
        steps: u64,
    ) -> Result<Vec<WorkerResult>, PsError> {
        let claimed = Arc::new(AtomicU64::new(0));
        let cfg = &self.cfg;
        let base_step = self.global_step;
        let n_shards = self.plane.shard_count();
        let n_servers = self.plane.server_count();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(active.len());
            for &worker in active {
                let port = ctx.port.clone();
                let abort = Arc::clone(&ctx.abort);
                let diverged_at = Arc::clone(&ctx.diverged_at);
                let claimed = Arc::clone(&claimed);
                let shard = &self.shards[worker];
                let mut model = self.template.clone();
                let delay = cfg.straggler_delay[worker];
                let batch = cfg.per_worker_batch;
                let (lr, mu) = (cfg.learning_rate, cfg.momentum);
                let seed = cfg.seed;
                let threshold = cfg.divergence_loss_threshold;
                let sparse_enabled = cfg.sparse_push;
                let telemetry = self.telemetry.clone();
                handles.push(scope.spawn(move || {
                    let mut profile = WorkerProfile::default();
                    let mut hist = StalenessHistogram::new();
                    let mut shard_hist = ServerShardStaleness::new(n_servers, n_shards);
                    let mut buf = port.new_buffer();
                    let mut scratch = SparseScratch::default();
                    let mut wt = telemetry.as_ref().map(WorkerTelemetry::new);
                    // First-step start for the wall-clock throughput span.
                    // ASP has no barrier, so wall and busy time only differ
                    // by straggler sleeps and scheduler preemption.
                    let mut wall_start: Option<Instant> = None;
                    // Same panic containment as the BSP loop (no barrier
                    // to release here — peers notice the abort flag at
                    // their next step claim, or panic on the same dead
                    // server themselves).
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        loop {
                            // Relaxed: latest-wins flag; diverged_at is read
                            // after thread join, which synchronizes.
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            // Relaxed: a pure ticket counter — atomicity alone
                            // guarantees each step id is claimed exactly once;
                            // no other data is published through it.
                            let s = claimed.fetch_add(1, Ordering::Relaxed);
                            if s >= steps {
                                break;
                            }
                            let t0 = Instant::now();
                            wall_start.get_or_insert(t0);
                            let step_ns = wt.as_ref().map_or(0, |w| w.now_ns());
                            port.pull_into(&mut buf);
                            model.set_params_flat(buf.params());
                            let mut rng = step_rng(seed, worker, base_step + s);
                            let (x, y) = shard.sample_batch(batch, &mut rng);
                            if let Some(d) = delay {
                                std::thread::sleep(d);
                            }
                            let (loss, grad) = model.loss_and_grad(&x, &y);
                            if !loss.is_finite() || loss > threshold {
                                // Relaxed: read back only after thread join.
                                diverged_at.store(base_step + s, Ordering::Relaxed);
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                            // Shard-granular push: per-shard staleness comes
                            // from each shard clock's pre-apply value versus
                            // the clock captured at pull time. Sparse-gradient
                            // models ship only their touched rows.
                            let staleness = push_maybe_sparse(
                                &port,
                                &model,
                                &grad,
                                sparse_enabled,
                                &mut scratch,
                                &buf,
                                lr,
                                mu,
                                &mut shard_hist,
                            );
                            let step_time = t0.elapsed();
                            profile.step_durations.push(step_time);
                            profile.losses.push(loss);
                            hist.record(staleness);
                            if let Some(ws) = wall_start {
                                profile.wall_time = ws.elapsed();
                            }
                            if let Some(w) = wt.as_mut() {
                                w.staleness(staleness);
                                w.step(worker, base_step + s, step_ns, step_time);
                            }
                        }
                    }));
                    if let Some(w) = wt.as_mut() {
                        w.flush();
                    }
                    match run {
                        Ok(()) => Ok((worker, profile, hist, shard_hist)),
                        Err(_payload) => {
                            abort.store(true, Ordering::Relaxed);
                            Err(worker)
                        }
                    }
                }));
            }
            collect_worker_results(handles)
        })
    }
}

/// Joins a segment's worker threads, separating clean results from caught
/// panics: the first dead worker (lowest join order) wins and the segment
/// fails with [`PsError::WorkerPanicked`]. The threads caught their own
/// unwinds, so `join` itself cannot fail; the panic payload was already
/// printed to stderr by the default hook when the thread panicked.
fn collect_worker_results(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<WorkerResult, usize>>>,
) -> Result<Vec<WorkerResult>, PsError> {
    let mut out = Vec::with_capacity(handles.len());
    let mut died: Option<usize> = None;
    for h in handles {
        match h.join().expect("worker threads catch their own panics") {
            Ok(r) => out.push(r),
            Err(worker) => died = died.or(Some(worker)),
        }
    }
    match died {
        None => Ok(out),
        Some(worker) => Err(PsError::WorkerPanicked { worker }),
    }
}

/// Deterministic per-(seed, worker, step) RNG for batch sampling, so BSP
/// runs are reproducible regardless of thread interleaving. Public so
/// integration tests and examples can replay the exact batches a worker
/// sampled (e.g. to compare distributed training against sequential SGD).
pub fn step_rng(seed: u64, worker: usize, step: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ seed;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ (worker as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ step;
    rand::rngs::StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync_switch_nn::SgdMomentum;

    fn small_trainer(workers: usize, seed: u64) -> Trainer {
        let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, seed);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(workers, 8, 0.05, 0.9).with_seed(seed);
        Trainer::new(Network::mlp(6, &[16], 4, seed), train, test, cfg)
    }

    #[test]
    fn bsp_completes_exact_steps() {
        let mut t = small_trainer(4, 1);
        let r = t.run_segment(SyncProtocol::Bsp, 25).unwrap();
        assert_eq!(r.steps, 25);
        assert_eq!(t.global_step(), 25);
        assert_eq!(t.store().unwrap().version(), 25);
        // Every active worker did every round.
        for w in 0..4 {
            assert_eq!(r.worker_profiles[w].steps(), 25);
        }
        // BSP gradients are never stale.
        assert_eq!(r.staleness.max(), Some(0));
        assert!((r.staleness.fresh_fraction() - 1.0).abs() < 1e-12);
        // Striped applies are fresh too: one observation per stripe per
        // round, every one of them zero, and every shard clock in lockstep
        // with the global version.
        assert_eq!(
            r.shard_staleness.total(),
            25 * t.store().unwrap().shard_count() as u64
        );
        assert_eq!(r.shard_staleness.max(), Some(0));
        for i in 0..t.store().unwrap().shard_count() {
            assert_eq!(t.store().unwrap().shard_version(i), 25);
        }
    }

    #[test]
    fn asp_completes_exact_steps_with_staleness() {
        let mut t = small_trainer(4, 2);
        let r = t.run_segment(SyncProtocol::Asp, 200).unwrap();
        assert_eq!(r.steps, 200);
        assert_eq!(t.store().unwrap().version(), 200);
        let total: usize = r.worker_profiles.iter().map(|p| p.steps()).sum();
        assert_eq!(total, 200);
        // Real concurrency produces some stale pushes with 4 workers.
        assert!(
            r.staleness.mean() > 0.1,
            "expected stale gradients, mean {}",
            r.staleness.mean()
        );
        assert!(r.staleness.max().unwrap() >= 1);
        // Per-shard clocks saw every push: one observation per shard per
        // step, and per-shard staleness tracks the global measurement.
        assert_eq!(
            r.shard_staleness.total(),
            200 * t.store().unwrap().shard_count() as u64
        );
        assert!(r.shard_staleness.max().unwrap() >= 1);
    }

    #[test]
    fn bsp_equals_sequential_large_batch_sgd() {
        // BSP with n workers of batch b must match 1-thread SGD over the
        // union batch (gradient of mean = mean of per-shard gradients).
        let workers = 3;
        let mut t = small_trainer(workers, 7);
        let initial = t.store().unwrap().snapshot_params();
        let shards: Vec<Dataset> = t.shards.clone();
        let template = t.template.clone();
        let rounds = 10;
        t.run_segment(SyncProtocol::Bsp, rounds).unwrap();
        let distributed = t.store().unwrap().snapshot_params();

        // Sequential replay.
        let mut model = template.clone();
        model.set_params_flat(&initial);
        let mut opt = SgdMomentum::new(model.param_count(), 0.05, 0.9);
        let mut params = initial.clone();
        for r in 0..rounds {
            let mut avg = vec![0.0f32; model.param_count()];
            for (w, shard) in shards.iter().enumerate() {
                model.set_params_flat(&params);
                let mut rng = step_rng(7, w, r);
                let (x, y) = shard.sample_batch(8, &mut rng);
                let (_, grad) = model.loss_and_grad(&x, &y);
                for (a, g) in avg.iter_mut().zip(&grad) {
                    *a += g / workers as f32;
                }
            }
            opt.apply(&mut params, &avg);
        }
        let max_diff = distributed
            .iter()
            .zip(&params)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-4,
            "BSP diverged from sequential SGD by {max_diff}"
        );
    }

    #[test]
    fn striped_bsp_matches_sequential_with_odd_shard_count() {
        // Stripes ≠ workers stresses the striped barrier: 3 workers over 7
        // stripes must still reproduce sequential large-batch SGD, with
        // different workers applying different stripes of the same round.
        let workers = 3;
        let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, 7);
        let (train, test) = data.split(0.25);
        let mut cfg = TrainerConfig::new(workers, 8, 0.05, 0.9).with_seed(7);
        cfg.shards = 7;
        let mut t = Trainer::new(Network::mlp(6, &[16], 4, 7), train, test, cfg);
        assert_eq!(t.store().unwrap().shard_count(), 7);
        let initial = t.store().unwrap().snapshot_params();
        let shards: Vec<Dataset> = t.shards.clone();
        let template = t.template.clone();
        let rounds = 10;
        t.run_segment(SyncProtocol::Bsp, rounds).unwrap();
        let distributed = t.store().unwrap().snapshot_params();

        let mut model = template.clone();
        model.set_params_flat(&initial);
        let mut opt = SgdMomentum::new(model.param_count(), 0.05, 0.9);
        let mut params = initial.clone();
        for r in 0..rounds {
            let mut avg = vec![0.0f32; model.param_count()];
            for (w, shard) in shards.iter().enumerate() {
                model.set_params_flat(&params);
                let mut rng = step_rng(7, w, r);
                let (x, y) = shard.sample_batch(8, &mut rng);
                let (_, grad) = model.loss_and_grad(&x, &y);
                for (a, g) in avg.iter_mut().zip(&grad) {
                    *a += g / workers as f32;
                }
            }
            opt.apply(&mut params, &avg);
        }
        let max_diff = distributed
            .iter()
            .zip(&params)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-4,
            "striped BSP diverged from sequential SGD by {max_diff}"
        );
    }

    #[test]
    fn multi_server_bsp_equals_sequential_large_batch_sgd() {
        // The ISSUE-prescribed shape: 2 servers × 7 shards × 3 workers.
        // Routing stripes to per-server live stores and draining stage 2 at
        // every barrier round must leave BSP numerically identical to
        // sequential large-batch SGD.
        let workers = 3;
        let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, 7);
        let (train, test) = data.split(0.25);
        let mut cfg = TrainerConfig::new(workers, 8, 0.05, 0.9).with_seed(7);
        cfg.shards = 7;
        cfg.topology = crate::config::ServerTopology::new(2, 4);
        let mut t = Trainer::new(Network::mlp(6, &[16], 4, 7), train, test, cfg);
        assert_eq!(t.server_count(), 2);
        assert!(t.router().is_some());
        let initial = t.plane.snapshot_params();
        let shards: Vec<Dataset> = t.shards.clone();
        let template = t.template.clone();
        let rounds = 10;
        let r = t.run_segment(SyncProtocol::Bsp, rounds).unwrap();
        let distributed = t.plane.snapshot_params();
        // Every barrier round drains stage 2, and BSP stays fresh per shard
        // on every server.
        assert_eq!(r.sync_rounds, rounds);
        assert_eq!(r.shard_staleness.max(), Some(0));
        assert_eq!(r.server_shard_staleness.server_count(), 2);
        assert_eq!(t.push_count(), rounds);

        let mut model = template.clone();
        model.set_params_flat(&initial);
        let mut opt = SgdMomentum::new(model.param_count(), 0.05, 0.9);
        let mut params = initial.clone();
        for round in 0..rounds {
            let mut avg = vec![0.0f32; model.param_count()];
            for (w, shard) in shards.iter().enumerate() {
                model.set_params_flat(&params);
                let mut rng = step_rng(7, w, round);
                let (x, y) = shard.sample_batch(8, &mut rng);
                let (_, grad) = model.loss_and_grad(&x, &y);
                for (a, g) in avg.iter_mut().zip(&grad) {
                    *a += g / workers as f32;
                }
            }
            opt.apply(&mut params, &avg);
        }
        let max_diff = distributed
            .iter()
            .zip(&params)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-4,
            "multi-server BSP diverged from sequential SGD by {max_diff}"
        );
    }

    #[test]
    fn multi_server_asp_reports_per_server_staleness() {
        let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, 8);
        let (train, test) = data.split(0.25);
        let mut cfg = TrainerConfig::new(4, 8, 0.05, 0.9).with_seed(8);
        cfg.shards = 5;
        cfg.topology = crate::config::ServerTopology::new(2, 2);
        let mut t = Trainer::new(Network::mlp(6, &[16], 4, 8), train, test, cfg);
        let steps = 200;
        let r = t.run_segment(SyncProtocol::Asp, steps).unwrap();
        assert_eq!(r.steps, steps);
        assert_eq!(t.push_count(), steps);
        // Rounds fire on the `sync_every` schedule; contended rounds may
        // batch (one round can cover several due periods), never exceed it.
        assert!(r.sync_rounds >= 1);
        assert!(r.sync_rounds <= steps / 2);
        // Every shard's observations sit under its owning server, and only
        // there.
        let router = t.router().expect("multi-server plane");
        assert_eq!(r.server_shard_staleness.server_count(), 2);
        for g in 0..router.shard_count() {
            let owner = router.owner_of(g);
            assert_eq!(
                r.server_shard_staleness.server(owner).shard(g).total(),
                steps,
                "shard {g} observations missing on owner {owner}"
            );
            assert_eq!(
                r.server_shard_staleness.server(1 - owner).shard(g).total(),
                0,
                "shard {g} observed on a non-owner"
            );
        }
        assert_eq!(
            r.shard_staleness.total(),
            steps * router.shard_count() as u64
        );
        // Real concurrency through the committed view produces staleness.
        assert!(r.staleness.mean() > 0.1);
    }

    #[test]
    fn multi_server_global_staleness_measures_data_lag() {
        // Regression: global staleness used to be measured against the
        // live push counter even though routed pulls read the older
        // committed view, so a worker training on stage-2-stale data
        // reported staleness 0. With one worker the honest measurement is
        // fully deterministic: push k pulls the view committed at the last
        // round (the largest multiple of sync_every ≤ k), so its staleness
        // is k mod sync_every.
        let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, 18);
        let (train, test) = data.split(0.25);
        let mut cfg = TrainerConfig::new(1, 8, 0.02, 0.9).with_seed(18);
        cfg.shards = 4;
        cfg.topology = crate::config::ServerTopology::new(2, 4);
        let mut t = Trainer::new(Network::mlp(6, &[16], 4, 18), train, test, cfg);
        let r = t.run_segment(SyncProtocol::Asp, 40).unwrap();
        assert_eq!(r.staleness.max(), Some(3), "committed lag must be visible");
        assert!((r.staleness.mean() - 1.5).abs() < 1e-9);
        // The global and per-shard views agree on the lag.
        assert_eq!(r.shard_staleness.max(), Some(3));
    }

    #[test]
    fn multi_server_trains_under_all_protocols() {
        // Acceptance shape: servers >= 2 trains MLP-on-blobs through BSP,
        // ASP, and SSP on the real PS in one trainer lifetime.
        let data = Dataset::gaussian_blobs(4, 80, 6, 0.35, 15);
        let (train, test) = data.split(0.25);
        let mut cfg = TrainerConfig::new(4, 8, 0.05, 0.9).with_seed(15);
        cfg.shards = 6;
        cfg.topology = crate::config::ServerTopology::new(3, 2);
        let mut t = Trainer::new(Network::mlp(6, &[16], 4, 15), train, test, cfg);
        let before = t.evaluate();
        for _ in 0..3 {
            t.run_segment(SyncProtocol::Bsp, 40).unwrap();
            t.run_segment(SyncProtocol::Asp, 40).unwrap();
            t.run_ssp_segment(2, 40).unwrap();
        }
        let after = t.evaluate();
        assert_eq!(t.global_step(), 360);
        assert!(
            after > before + 0.2,
            "multi-server training did not learn: {before} -> {after}"
        );
    }

    #[test]
    fn clamped_topology_uses_single_store_fast_path() {
        // servers > shards clamps to one effective server; that must get
        // the single-store plane (live pulls, no stage-2 lag), not a
        // one-owner router with committed-view semantics.
        let data = Dataset::gaussian_blobs(3, 40, 5, 0.3, 19);
        let (train, test) = data.split(0.25);
        let mut cfg = TrainerConfig::new(2, 8, 0.05, 0.9).with_seed(19);
        cfg.shards = 1;
        cfg.topology = crate::config::ServerTopology::new(2, 64);
        let mut t = Trainer::new(Network::mlp(5, &[8], 3, 19), train, test, cfg);
        assert_eq!(t.server_count(), 1);
        assert!(t.router().is_none());
        assert!(t.store().is_ok(), "single-server accessor works");
        let r = t.run_segment(SyncProtocol::Asp, 30).unwrap();
        assert_eq!(r.sync_rounds, 0);
    }

    #[test]
    fn store_accessor_errs_on_multi_server() {
        let data = Dataset::gaussian_blobs(3, 40, 5, 0.3, 1);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(2, 8, 0.05, 0.9)
            .with_topology(crate::config::ServerTopology::new(2, 1));
        let t = Trainer::new(Network::mlp(5, &[8], 3, 1), train, test, cfg);
        match t.store() {
            Err(PsError::NoSingleStore { servers }) => assert_eq!(servers, 2),
            other => panic!("expected NoSingleStore, got {other:?}"),
        }
        // The error names the remedies, and the message is actionable.
        let msg = t.store().unwrap_err().to_string();
        assert!(msg.contains("2-server"), "{msg}");
        assert!(msg.contains("snapshot"), "{msg}");
    }

    #[test]
    fn topology_is_fixed_after_construction() {
        let mut t = small_trainer(2, 16);
        let mut cfg = t.config().clone();
        cfg.topology = crate::config::ServerTopology::new(2, 1);
        assert!(matches!(t.set_config(cfg), Err(PsError::InvalidConfig(_))));
    }

    #[test]
    fn bsp_training_learns() {
        let mut t = small_trainer(4, 3);
        let before = t.evaluate();
        for _ in 0..6 {
            t.run_segment(SyncProtocol::Bsp, 50).unwrap();
        }
        let after = t.evaluate();
        assert!(
            after > before + 0.2,
            "accuracy did not improve: {before} -> {after}"
        );
    }

    #[test]
    fn asp_training_learns() {
        let mut t = small_trainer(4, 4);
        for _ in 0..6 {
            t.run_segment(SyncProtocol::Asp, 50).unwrap();
        }
        assert!(t.evaluate() > 0.6, "accuracy {}", t.evaluate());
    }

    #[test]
    fn checkpoint_restore_resumes() {
        let mut t = small_trainer(2, 5);
        t.run_segment(SyncProtocol::Bsp, 10).unwrap();
        let ck = t.checkpoint();
        assert_eq!(ck.step, 10);
        t.run_segment(SyncProtocol::Asp, 20).unwrap();
        assert_eq!(t.global_step(), 30);
        t.restore(&ck).unwrap();
        assert_eq!(t.global_step(), 10);
        assert_eq!(t.store().unwrap().snapshot_params(), ck.params);
    }

    #[test]
    fn divergence_detected_and_reported() {
        let data = Dataset::gaussian_blobs(3, 30, 4, 0.3, 9);
        let (train, test) = data.split(0.2);
        // Absurd learning rate forces a loss spike past the divergence
        // threshold (a dead-ReLU network can stabilize afterwards, so the
        // threshold check is the reliable detector — same as the paper's
        // "divergence errors").
        let mut cfg = TrainerConfig::new(2, 8, 500.0, 0.9).with_seed(9);
        cfg.divergence_loss_threshold = 4.0;
        let mut t = Trainer::new(Network::mlp(4, &[12], 3, 9), train, test, cfg);
        let mut diverged = false;
        for _ in 0..20 {
            match t.run_segment(SyncProtocol::Asp, 50) {
                Err(PsError::Diverged { .. }) => {
                    diverged = true;
                    break;
                }
                Ok(_) => continue,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(diverged, "expected divergence with lr=500");
    }

    #[test]
    fn straggler_slows_its_own_profile() {
        let data = Dataset::gaussian_blobs(3, 60, 4, 0.3, 11);
        let (train, test) = data.split(0.2);
        let cfg = TrainerConfig::new(3, 4, 0.05, 0.9)
            .with_seed(11)
            .with_straggler(1, Duration::from_millis(3));
        let mut t = Trainer::new(Network::mlp(4, &[8], 3, 11), train, test, cfg);
        let r = t.run_segment(SyncProtocol::Asp, 60).unwrap();
        let fast = r.worker_profiles[0].steps_per_sec();
        let slow = r.worker_profiles[1].steps_per_sec();
        assert!(
            slow < fast * 0.7,
            "straggler {slow} steps/s vs fast {fast} steps/s"
        );
        // ASP lets fast workers do more steps than the straggler.
        assert!(r.worker_profiles[0].steps() > r.worker_profiles[1].steps());
    }

    #[test]
    fn excluded_worker_does_no_work() {
        let mut t = small_trainer(3, 12);
        let mut cfg = t.config().clone();
        cfg.excluded_workers = vec![2];
        t.set_config(cfg).unwrap();
        let r = t.run_segment(SyncProtocol::Bsp, 10).unwrap();
        assert_eq!(r.worker_profiles[2].steps(), 0);
        assert_eq!(r.worker_profiles[0].steps(), 10);
        assert_eq!(t.store().unwrap().version(), 10);
    }

    #[test]
    fn zero_step_segment_is_noop() {
        let mut t = small_trainer(2, 13);
        let r = t.run_segment(SyncProtocol::Bsp, 0).unwrap();
        assert_eq!(r.steps, 0);
        assert_eq!(t.global_step(), 0);
    }

    #[test]
    fn config_worker_count_is_fixed() {
        let mut t = small_trainer(2, 14);
        let bad = TrainerConfig::new(3, 8, 0.05, 0.9);
        assert!(matches!(t.set_config(bad), Err(PsError::InvalidConfig(_))));
    }

    #[test]
    fn segments_record_step_and_barrier_telemetry() {
        let mut t = small_trainer(3, 21);
        let asp_steps = 40;
        let bsp_rounds = 10;
        t.run_segment(SyncProtocol::Asp, asp_steps).unwrap();
        t.run_segment(SyncProtocol::Bsp, bsp_rounds).unwrap();
        let bus = t.telemetry().expect("telemetry defaults on");
        // Every completed step incremented the counter and recorded a
        // duration: 40 ASP steps plus one step per worker per BSP round.
        let snap = bus.metrics.snapshot();
        let expected = asp_steps + 3 * bsp_rounds;
        assert_eq!(snap.counters.get("engine.steps"), Some(&expected));
        let step_hist = snap.histograms.get("engine.step_ns").unwrap();
        assert_eq!(step_hist.count, expected);
        assert!(step_hist.sum > 0);
        // ASP staleness observations: one per step.
        assert_eq!(
            snap.histograms.get("engine.staleness").unwrap().count,
            asp_steps
        );
        // BSP parked each worker at the barrier each round.
        assert_eq!(
            snap.histograms.get("engine.barrier_wait_ns").unwrap().count,
            3 * bsp_rounds
        );
        // The trace carries matching step and barrier-wait spans.
        let counts = bus.trace.counts_by_name();
        assert_eq!(counts.get("step"), Some(&expected));
        assert_eq!(counts.get("barrier_wait"), Some(&(3 * bsp_rounds)));
    }

    #[test]
    fn telemetry_off_means_no_bus() {
        let data = Dataset::gaussian_blobs(3, 40, 5, 0.3, 22);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(2, 8, 0.05, 0.9)
            .with_seed(22)
            .with_telemetry(false);
        let mut t = Trainer::new(Network::mlp(5, &[8], 3, 22), train, test, cfg);
        assert!(t.telemetry().is_none());
        // The loops still run — telemetry is strictly optional.
        let r = t.run_segment(SyncProtocol::Asp, 10).unwrap();
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn worker_profiles_record_wall_time() {
        // One straggler: its *busy* rate collapses, but the fast worker's
        // *wall* rate must collapse too under BSP, where it idles at the
        // barrier waiting for the straggler — the distinction the wall
        // clock exists to expose.
        let data = Dataset::gaussian_blobs(3, 60, 4, 0.3, 23);
        let (train, test) = data.split(0.2);
        let cfg = TrainerConfig::new(2, 4, 0.05, 0.9)
            .with_seed(23)
            .with_straggler(1, Duration::from_millis(4));
        let mut t = Trainer::new(Network::mlp(4, &[8], 3, 23), train, test, cfg);
        let rounds = 15;
        let r = t.run_segment(SyncProtocol::Bsp, rounds).unwrap();
        let fast = &r.worker_profiles[0];
        let slow = &r.worker_profiles[1];
        assert!(!fast.wall_time.is_zero());
        assert!(!slow.wall_time.is_zero());
        // Both workers' wall spans cover the straggler's sleeps.
        let floor = Duration::from_millis(4 * (rounds - 1));
        assert!(fast.wall_time >= floor, "fast wall {:?}", fast.wall_time);
        assert!(slow.wall_time >= floor, "slow wall {:?}", slow.wall_time);
        // The fast worker looks fast on busy time and slow on wall time.
        let wall_rate = fast.wall_steps_per_sec().expect("wall span recorded");
        assert!(fast.steps_per_sec() > 2.0 * wall_rate);
    }
}
