//! Crash recovery for a transport-backed PS tier: detect a dead
//! [`PsServer`](crate::PsServer), bring a fresh instance up in its place,
//! and replay its state from the last checkpoint.
//!
//! The supervisor is deliberately client-driven — it runs wherever the
//! [`NetRouter`] runs and works entirely through wire frames (`CheckFinite`
//! probes, `Snapshot`, `Restore`, `Drain`), so recovery exercises exactly
//! the protocol a remote control plane would use. Detection is a failed
//! probe: a killed server's listener answers the dial but drops the
//! connection, which the short-budget ping reports as an error.

use std::time::{Duration, Instant};

use sync_switch_telemetry::TraceKind;

use crate::error::PsError;
use crate::transport::NetRouter;

/// Detects and heals dead servers behind a [`NetRouter`].
///
/// Usage pattern: call [`checkpoint`](Self::checkpoint) at a quiescent
/// point (e.g. after a drain, between segments) to capture every server's
/// `(params, velocity)` slice, then [`heal`](Self::heal) whenever a crash
/// is suspected. `heal` probes every server; each one that fails the probe
/// is revived as a fresh instance and re-seeded from its snapshot, then
/// committed so the next pull sees the restored data.
///
/// Recovery is lossy in exactly the way a real PS checkpoint scheme is:
/// pushes applied to a server after its last `checkpoint` die with it.
/// Callers bound the loss by checkpointing at segment boundaries.
#[derive(Debug, Default)]
pub struct ServerSupervisor {
    /// Last checkpointed `(params, velocity)` slice per server; `None`
    /// until the first [`checkpoint`](Self::checkpoint).
    snapshots: Vec<Option<(Vec<f32>, Vec<f32>)>>,
    /// Instance nonce observed at the last checkpoint, per server. A later
    /// probe answering with a *different* nonce is a respawned process with
    /// reset state — the cross-process crash signal, since a respawned
    /// `ps-serve` answers probes happily.
    nonces: Vec<Option<u64>>,
}

impl ServerSupervisor {
    /// A supervisor for a tier of `servers` servers, with no snapshots yet.
    pub fn new(servers: usize) -> Self {
        ServerSupervisor {
            snapshots: (0..servers).map(|_| None).collect(),
            nonces: (0..servers).map(|_| None).collect(),
        }
    }

    /// Snapshots every server's live `(params, velocity)` slice over the
    /// wire, replacing any previous snapshots.
    ///
    /// # Errors
    ///
    /// Propagates the first wire failure; earlier servers' snapshots are
    /// still replaced.
    pub fn checkpoint(&mut self, router: &NetRouter) -> Result<(), PsError> {
        if self.snapshots.len() != router.server_count() {
            self.snapshots = (0..router.server_count()).map(|_| None).collect();
            self.nonces = (0..router.server_count()).map(|_| None).collect();
        }
        for s in 0..router.server_count() {
            let params = router.snapshot_server(s, false)?;
            let velocity = router.snapshot_server(s, true)?;
            self.snapshots[s] = Some((params, velocity));
            // Record who we checkpointed, so a later heal can tell this
            // instance from a respawned replacement. Best-effort: a tier
            // predating HELLO (or a faulty link) just skips the record.
            self.nonces[s] = router.server_info(s).ok().map(|i| i.nonce);
        }
        Ok(())
    }

    /// Probes every server; each one that fails the probe is revived and
    /// re-seeded from its snapshot (fresh zero state if none was taken),
    /// then re-probed. Returns the number of servers healed.
    ///
    /// # Errors
    ///
    /// Returns the revive/restore/re-probe failure of the first server
    /// that could not be brought back.
    pub fn heal(&mut self, router: &NetRouter) -> Result<usize, PsError> {
        let mut healed = 0;
        for s in 0..router.server_count() {
            if router.ping_server(s).is_ok() {
                continue;
            }
            router
                .revive_server(s)
                .map_err(|_| PsError::ConnLost { server: s })?;
            if let Some(Some((params, velocity))) = self.snapshots.get(s) {
                router.restore_server(s, params, velocity)?;
            }
            router.ping_server(s)?;
            // The revived instance has a fresh nonce; record it so a later
            // nonce comparison does not mistake it for a second respawn.
            self.nonces[s] = router.server_info(s).ok().map(|i| i.nonce);
            healed += 1;
        }
        Ok(healed)
    }

    /// The cross-process counterpart of [`heal`](Self::heal), for a tier of
    /// `ps-serve` *processes* reached through [`NetRouter::connect`] — where
    /// the transport cannot revive a server in place, and a crashed server
    /// comes back only when something respawns its process at the same
    /// address.
    ///
    /// For each server this waits (up to `wait`, shared across servers) for
    /// a `Hello` answer, then compares the answering instance's nonce with
    /// the one recorded at the last [`checkpoint`](Self::checkpoint): a
    /// changed (or never-recorded) nonce means a fresh instance holding
    /// reset state, so its snapshot is replayed and committed. Returns the
    /// number of servers healed.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::ConnLost`] for a server nobody respawned within
    /// `wait`, or the restore failure of a server that answered but could
    /// not be re-seeded.
    pub fn heal_respawned(&mut self, router: &NetRouter, wait: Duration) -> Result<usize, PsError> {
        let telemetry = router.telemetry();
        let start = Instant::now();
        let mut healed = 0;
        for s in 0..router.server_count() {
            let info = loop {
                match router.server_info(s) {
                    Ok(info) => break info,
                    Err(_) => {
                        if start.elapsed() >= wait {
                            return Err(PsError::ConnLost { server: s });
                        }
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            };
            if self.nonces.get(s).copied().flatten() == Some(info.nonce) {
                continue; // same instance we checkpointed — state intact
            }
            // A changed nonce is how a cross-process crash is *observed*:
            // nobody on this side called kill/revive, so the supervisor is
            // the only place the death and the re-seed can be recorded.
            if let Some(t) = &telemetry {
                t.metrics.counter("fault.server_kills").inc();
                t.trace.instant(TraceKind::ServerKill { server: s as u64 });
            }
            if let Some(Some((params, velocity))) = self.snapshots.get(s) {
                router.restore_server(s, params, velocity)?;
            }
            self.nonces[s] = Some(info.nonce);
            healed += 1;
            if let Some(t) = &telemetry {
                t.metrics.counter("fault.server_heals").inc();
                t.trace.instant(TraceKind::ServerHeal { server: s as u64 });
            }
        }
        Ok(healed)
    }

    /// Whether server `s` has a snapshot to restore from.
    pub fn has_snapshot(&self, s: usize) -> bool {
        matches!(self.snapshots.get(s), Some(Some(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ServerTopology, TransportKind};
    use crate::router::RouterBuffer;
    use crate::transport::NetPort;

    #[test]
    fn heal_is_a_no_op_on_a_healthy_tier() {
        let net = NetPort::launch(
            &[1.0f32; 16],
            4,
            ServerTopology::new(2, 1).with_transport(TransportKind::Tcp),
        );
        let mut sup = ServerSupervisor::new(net.router().server_count());
        sup.checkpoint(net.router()).expect("checkpoint");
        assert!(sup.has_snapshot(0) && sup.has_snapshot(1));
        assert_eq!(sup.heal(net.router()).expect("heal"), 0);
    }

    #[test]
    fn kill_then_heal_restores_the_checkpointed_state() {
        let initial: Vec<f32> = (0..24).map(|i| i as f32 * 0.1).collect();
        let net = NetPort::launch(
            &initial,
            4,
            ServerTopology::new(2, 1).with_transport(TransportKind::Tcp),
        );
        let r = net.router();
        for g in 0..r.shard_count() {
            let (_, l) = r.shard_range(g);
            net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.9);
        }
        r.complete_push(0);
        r.drain();
        let expected = r.snapshot_params();
        let mut sup = ServerSupervisor::new(r.server_count());
        sup.checkpoint(r).expect("checkpoint");

        r.kill_server(1).expect("kill");
        assert!(r.ping_server(1).is_err(), "killed server must fail probes");
        assert_eq!(sup.heal(r).expect("heal"), 1);

        assert_eq!(r.snapshot_params(), expected, "state replayed on revive");
        let mut buf = RouterBuffer::new();
        net.pull_into(&mut buf);
        assert_eq!(buf.params(), &expected[..], "restored state is committed");
    }
}
