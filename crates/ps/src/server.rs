//! A single parameter-server instance owning a disjoint subset of shards.
//!
//! The multi-server tier splits the [`crate::store::ShardLayout`] across N
//! [`PsServer`]s; each server is authoritative for its owned shards and
//! keeps two copies of them, implementing the OSP-style two-stage protocol
//! (arXiv:2306.16926) at server granularity:
//!
//! * **live** — stage-1 state. Worker pushes routed here by the
//!   [`crate::ShardRouter`] apply immediately under the shard lock, exactly
//!   like the single-server store; the live shard clocks count applies.
//! * **committed** — stage-2 state, what workers pull. A reconciliation
//!   round copies each owned shard's live parameters (and clock) into the
//!   committed store, so a pull observes a consistent recently-published
//!   view of every server without racing stage-1 applies on remote shards.
//!
//! The gap between a shard's live and committed clock is its *cross-server
//! staleness contribution*: how many stage-1 applies the rest of the
//! cluster has not yet seen. The router bounds it by running a round every
//! `sync_every` pushes (BSP drains it at every barrier round).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;
use sync_switch_telemetry::{ServerStats, ServerStatsSnapshot};

use crate::store::{ShardLayout, ShardedStore, UpdateData};

/// Allocator for per-instance nonces. Seeded from wall-clock nanos XOR the
/// pid so two *processes* constructing their first server get different
/// nonces, then bumped per construction so an in-process revive does too.
static NONCES: AtomicU64 = AtomicU64::new(0);

fn next_nonce() -> u64 {
    let seeded = NONCES.load(Ordering::Relaxed);
    if seeded == 0 {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let seed = (nanos ^ (u64::from(std::process::id()) << 32)) | 1;
        // A racing first construction just means both threads try the CAS;
        // whichever wins seeds the counter, the loser re-reads it.
        let _ = NONCES.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
    }
    NONCES.fetch_add(1, Ordering::Relaxed)
}

/// Per-client deduplication state for sequenced (idempotent re-send)
/// requests: the last sequence number executed and the reply it produced,
/// replayed verbatim on a duplicate.
#[derive(Debug, Default)]
pub(crate) struct SeqEntry {
    /// Sequence number of the last executed mutating request, if any.
    pub(crate) last: Option<u32>,
    /// Cached reply payload of that request.
    pub(crate) reply: Vec<u8>,
}

/// One parameter server: authoritative (live + committed) state for a
/// contiguous run of global shards.
#[derive(Debug)]
pub struct PsServer {
    id: usize,
    /// First global shard id owned by this server.
    shard_offset: usize,
    /// `(offset, len)` of the owned slice of the flat parameter vector.
    param_range: (usize, usize),
    /// Instance identity: unique per constructed server, across processes.
    /// A client seeing the nonce change at a fixed address knows the server
    /// was replaced (respawn or revive) and its state reset.
    nonce: u64,
    /// Stage-1 state: applies land here immediately.
    live: ShardedStore,
    /// Stage-2 state: the committed view workers pull.
    committed: ShardedStore,
    /// Sequenced-request dedup table, keyed by client id. Lives on the
    /// server (not the per-connection endpoint) so a retry arriving on a
    /// *fresh* connection still deduplicates against the original send.
    seq_dedup: Mutex<HashMap<u64, Arc<Mutex<SeqEntry>>>>,
    /// Request accounting (per-opcode counts, payload bytes, dedup hits,
    /// apply timing), recorded by every connection handler and shipped to
    /// scrapers over the `Stats` wire frame. Per instance: a revived
    /// replacement starts counting from zero, like its state.
    stats: ServerStats,
}

impl PsServer {
    /// Creates server `id` owning global shards
    /// `shard_offset..shard_offset + owned_shards` of `global`, initialized
    /// from the full flat vector `initial`.
    ///
    /// # Panics
    ///
    /// Panics if the owned shard range is out of bounds for the layout or
    /// `initial` does not match the layout's extent.
    pub(crate) fn new(
        id: usize,
        global: &ShardLayout,
        shard_offset: usize,
        owned_shards: usize,
        initial: &[f32],
    ) -> Self {
        assert_eq!(initial.len(), global.total(), "initial length mismatch");
        assert!(
            shard_offset + owned_shards <= global.len(),
            "owned shards out of range"
        );
        assert!(owned_shards > 0, "server {id} owns no shards");
        let param_offset = global.range(shard_offset).0;
        let param_len: usize = (shard_offset..shard_offset + owned_shards)
            .map(|g| global.range(g).1)
            .sum();
        let slice = &initial[param_offset..param_offset + param_len];
        let live = ShardedStore::new(slice, owned_shards);
        // ShardLayout's near-equal split is self-similar for contiguous
        // runs, so the local boundaries coincide with the global ones.
        debug_assert!((0..owned_shards).all(|k| {
            let (lo, ll) = live.shard_range(k);
            let (go, gl) = global.range(shard_offset + k);
            param_offset + lo == go && ll == gl
        }));
        PsServer {
            id,
            shard_offset,
            param_range: (param_offset, param_len),
            nonce: next_nonce(),
            committed: ShardedStore::new(slice, owned_shards),
            live,
            seq_dedup: Mutex::new(HashMap::new()),
            stats: ServerStats::new(owned_shards),
        }
    }

    /// This client's dedup entry, created on first use. The returned arc is
    /// locked *across* the execution of a sequenced request, serializing a
    /// retry against a still-running original so the apply cannot land
    /// twice.
    pub(crate) fn seq_entry(&self, client: u64) -> Arc<Mutex<SeqEntry>> {
        self.seq_dedup.lock().entry(client).or_default().clone()
    }

    /// This server's id (its index in the router's server list).
    pub fn id(&self) -> usize {
        self.id
    }

    /// This instance's nonce (see [`crate::transport::wire::ServerInfo`]):
    /// distinct for every constructed server, including a revived or
    /// respawned replacement at the same address.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// Number of shards this server owns.
    pub fn shard_count(&self) -> usize {
        self.live.shard_count()
    }

    /// First global shard id owned by this server.
    pub fn shard_offset(&self) -> usize {
        self.shard_offset
    }

    /// `(offset, len)` of the owned slice of the flat parameter vector.
    pub fn param_range(&self) -> (usize, usize) {
        self.param_range
    }

    /// The stage-1 (live) store — the authoritative state for snapshots,
    /// checkpoint restore, and divergence checks.
    pub fn live(&self) -> &ShardedStore {
        &self.live
    }

    /// This instance's request accounting.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// A point-in-time copy of the request accounting, stamped with this
    /// server's id — what the `Stats` wire frame replies with.
    pub fn stats_snapshot(&self) -> ServerStatsSnapshot {
        self.stats.snapshot(self.id as u32)
    }

    /// Stage-1 apply: momentum-SGD update on owned shard `local` (this
    /// server's indexing; global shard `shard_offset + local`). Returns the
    /// live shard clock before the apply, as
    /// [`ShardedStore::apply_shard_update`] does.
    pub fn apply_local(&self, local: usize, grad: &[f32], lr: f64, momentum: f64) -> u64 {
        self.live.apply_shard_update(local, grad, lr, momentum)
    }

    /// Stage-1 apply of an [`UpdateData`] payload (dense or sparse) on
    /// owned shard `local` — the entry point the wire endpoints and the
    /// router's sparse push route through. Same clock contract as
    /// [`PsServer::apply_local`].
    pub fn apply_local_data(
        &self,
        local: usize,
        data: UpdateData<'_>,
        lr: f64,
        momentum: f64,
    ) -> u64 {
        self.live.apply_shard_update_data(local, data, lr, momentum)
    }

    /// Stage-2 commit of one owned shard: copies the live parameters and
    /// clock into the committed store through `scratch` (reused across the
    /// round so reconciliation allocates nothing in the steady state).
    /// Returns the committed clock.
    pub fn commit_shard(&self, local: usize, scratch: &mut Vec<f32>) -> u64 {
        let clock = self.live.read_shard_into(local, scratch);
        self.committed.overwrite_shard(local, scratch, clock);
        clock
    }

    /// Stage-2 commit of every owned shard.
    pub fn commit_all(&self, scratch: &mut Vec<f32>) {
        for local in 0..self.shard_count() {
            self.commit_shard(local, scratch);
        }
    }

    /// Pulls the committed view of the owned slice directly into the
    /// caller's slices (the router points these at the worker's flat
    /// buffer, so assembly costs a single copy). The clocks written are
    /// the committed clocks — live clocks at the last reconciliation.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the owned parameter count /
    /// shard count.
    pub fn pull_committed_into(&self, params_out: &mut [f32], clocks_out: &mut [u64]) {
        self.committed.pull_into_slices(params_out, clocks_out);
    }

    /// How many stage-1 applies on owned shard `local` the committed view
    /// has not yet published.
    pub fn committed_lag(&self, local: usize) -> u64 {
        self.live
            .shard_version(local)
            .saturating_sub(self.committed.shard_version(local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_owns_aligned_slice() {
        let initial: Vec<f32> = (0..23).map(|i| i as f32).collect();
        let global = ShardLayout::new(23, 5);
        // Two servers: 3 + 2 shards.
        let a = PsServer::new(0, &global, 0, 3, &initial);
        let b = PsServer::new(1, &global, 3, 2, &initial);
        assert_eq!(a.shard_count(), 3);
        assert_eq!(b.shard_count(), 2);
        let (ao, al) = a.param_range();
        let (bo, bl) = b.param_range();
        assert_eq!(ao, 0);
        assert_eq!(ao + al, bo);
        assert_eq!(bo + bl, 23);
        assert_eq!(a.live().snapshot_params(), initial[ao..ao + al]);
        assert_eq!(b.live().snapshot_params(), initial[bo..bo + bl]);
    }

    #[test]
    fn commit_publishes_live_state_and_clock() {
        let initial = vec![1.0f32; 12];
        let global = ShardLayout::new(12, 4);
        let server = PsServer::new(0, &global, 0, 4, &initial);
        let (_, len) = server.live().shard_range(2);
        server.apply_local(2, &vec![1.0; len], 0.5, 0.0);
        // Stage 1 landed on live, the committed view still lags.
        assert_eq!(server.committed_lag(2), 1);
        let mut params = vec![0.0f32; 12];
        let mut clocks = vec![0u64; 4];
        server.pull_committed_into(&mut params, &mut clocks);
        assert_eq!(params, initial);
        assert_eq!(clocks[2], 0);
        // Stage 2 publishes data and clock together.
        let mut scratch = Vec::new();
        server.commit_all(&mut scratch);
        assert_eq!(server.committed_lag(2), 0);
        server.pull_committed_into(&mut params, &mut clocks);
        assert_eq!(clocks[2], 1);
        assert_eq!(params, server.live().snapshot_params());
    }
}
