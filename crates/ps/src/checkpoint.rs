//! Model checkpoints — the persistence mechanism behind protocol switching.
//!
//! The paper's switch mechanism "leverages TensorFlow's built-in model
//! checkpoint/restore functions for persisting the training progress" (§V).
//! Here a checkpoint captures the flat parameter vector, the optimizer
//! velocity, and the global step, and can round-trip through a compact
//! binary encoding (for the on-disk path).

use crate::error::PsError;

/// A point-in-time snapshot of training state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Global step at which the snapshot was taken.
    pub step: u64,
    /// Flat model parameters.
    pub params: Vec<f32>,
    /// Optimizer velocity (momentum slots), aligned with `params`.
    pub velocity: Vec<f32>,
}

impl Checkpoint {
    /// Creates a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `velocity` lengths differ.
    pub fn new(step: u64, params: Vec<f32>, velocity: Vec<f32>) -> Self {
        assert_eq!(
            params.len(),
            velocity.len(),
            "params/velocity length mismatch"
        );
        Checkpoint {
            step,
            params,
            velocity,
        }
    }

    /// Number of parameters captured.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Validates this checkpoint against an expected parameter count.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::CheckpointMismatch`] when the count differs.
    pub fn check_compatible(&self, expected_params: usize) -> Result<(), PsError> {
        if self.params.len() != expected_params {
            return Err(PsError::CheckpointMismatch(format!(
                "checkpoint has {} params, model expects {}",
                self.params.len(),
                expected_params
            )));
        }
        Ok(())
    }

    /// Serializes to a compact little-endian binary blob:
    /// `step (u64) | n (u64) | params (n × f32) | velocity (n × f32)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.params.len();
        let mut out = Vec::with_capacity(16 + 8 * n);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for &p in &self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &v in &self.velocity {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from the [`Checkpoint::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::CheckpointMismatch`] on truncated or malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PsError> {
        let header = 16;
        if bytes.len() < header {
            return Err(PsError::CheckpointMismatch("truncated header".into()));
        }
        let step = u64::from_le_bytes(bytes[0..8].try_into().expect("sized"));
        let n = u64::from_le_bytes(bytes[8..16].try_into().expect("sized")) as usize;
        let expected = header + 8 * n;
        if bytes.len() != expected {
            return Err(PsError::CheckpointMismatch(format!(
                "expected {expected} bytes for {n} params, got {}",
                bytes.len()
            )));
        }
        let read_f32s = |range: std::ops::Range<usize>| -> Vec<f32> {
            bytes[range]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
                .collect()
        };
        let params = read_f32s(header..header + 4 * n);
        let velocity = read_f32s(header + 4 * n..header + 8 * n);
        Ok(Checkpoint {
            step,
            params,
            velocity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_round_trip() {
        let ck = Checkpoint::new(12345, vec![1.5, -2.25, 0.0], vec![0.1, 0.2, -0.3]);
        let bytes = ck.to_bytes();
        assert_eq!(bytes.len(), 16 + 8 * 3);
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn truncated_bytes_rejected() {
        let ck = Checkpoint::new(1, vec![1.0], vec![0.0]);
        let mut bytes = ck.to_bytes();
        bytes.pop();
        assert!(Checkpoint::from_bytes(&bytes).is_err());
        assert!(Checkpoint::from_bytes(&bytes[..8]).is_err());
    }

    #[test]
    fn compatibility_check() {
        let ck = Checkpoint::new(0, vec![0.0; 10], vec![0.0; 10]);
        assert!(ck.check_compatible(10).is_ok());
        let err = ck.check_compatible(11).unwrap_err();
        assert!(matches!(err, PsError::CheckpointMismatch(_)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unequal_lengths_panic() {
        let _ = Checkpoint::new(0, vec![0.0; 2], vec![0.0; 3]);
    }
}
