//! The synchronization-switch mechanism: checkpoint → reconfigure → restart.
//!
//! Mirrors paper §V: "once all custom hook managers finish checkpointing,
//! the cluster manager propagates the updated training job and
//! configurations to all nodes … custom hook managers relaunch the training
//! tasks to resume the training from the last model checkpoint but with a
//! different synchronization protocol." Here the relaunch is in-process, and
//! the real durations of each stage are measured so the runtime-overhead
//! analysis (paper Table III) has a live counterpart.

use std::time::{Duration, Instant};

use sync_switch_workloads::SyncProtocol;

use crate::engine::Trainer;
use crate::error::PsError;

/// The configuration adjustments to apply atomically with a protocol switch.
///
/// Produced by the Sync-Switch configuration policy: when switching from BSP
/// to ASP the global batch `n·B` becomes the per-worker batch `B`, the
/// learning rate drops from `n·η` to `η`, and momentum is preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchPlan {
    /// Protocol to switch to.
    pub to: SyncProtocol,
    /// New per-worker batch size.
    pub per_worker_batch: usize,
    /// New learning rate.
    pub learning_rate: f64,
    /// New momentum coefficient.
    pub momentum: f64,
    /// Whether to clear optimizer velocity (needed when the momentum
    /// semantics change discontinuously, e.g. the "Zero" scaling variant).
    pub reset_velocity: bool,
}

impl SwitchPlan {
    /// A plan that changes only the protocol, keeping the configuration's
    /// current hyper-parameters — the shape the divergence watchdog and the
    /// adaptive controller both execute (their job is picking the
    /// discipline; batch/learning-rate scaling is the configuration
    /// policy's).
    pub fn keep_hyper(
        cfg: &crate::config::TrainerConfig,
        to: SyncProtocol,
        reset_velocity: bool,
    ) -> Self {
        SwitchPlan {
            to,
            per_worker_batch: cfg.per_worker_batch,
            learning_rate: cfg.learning_rate,
            momentum: cfg.momentum,
            reset_velocity,
        }
    }
}

/// Measured timings of an executed switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchOutcome {
    /// Time to drain in-flight stage-2 reconciliation rounds (zero on a
    /// single-server plane).
    pub drain_time: Duration,
    /// Time to checkpoint the current state.
    pub checkpoint_time: Duration,
    /// Time to propagate the new configuration.
    pub reconfigure_time: Duration,
    /// Time to restore state into the relaunched configuration.
    pub restore_time: Duration,
}

impl SwitchOutcome {
    /// Total switching overhead.
    pub fn total(&self) -> Duration {
        self.drain_time + self.checkpoint_time + self.reconfigure_time + self.restore_time
    }
}

/// Executes a protocol switch on a trainer between segments.
///
/// # Errors
///
/// Returns [`PsError::InvalidConfig`] if the plan produces an invalid
/// configuration.
///
/// # Example
///
/// ```
/// use sync_switch_nn::{Dataset, Network};
/// use sync_switch_ps::{execute_switch, SwitchPlan, Trainer, TrainerConfig};
/// use sync_switch_workloads::SyncProtocol;
///
/// let data = Dataset::gaussian_blobs(3, 40, 5, 0.3, 1);
/// let (train, test) = data.split(0.25);
/// let mut t = Trainer::new(
///     Network::mlp(5, &[8], 3, 1),
///     train,
///     test,
///     TrainerConfig::new(2, 16, 0.2, 0.9),
/// );
/// t.run_segment(SyncProtocol::Bsp, 5)?;
/// let plan = SwitchPlan {
///     to: SyncProtocol::Asp,
///     per_worker_batch: 8,
///     learning_rate: 0.1,
///     momentum: 0.9,
///     reset_velocity: false,
/// };
/// let outcome = execute_switch(&mut t, &plan)?;
/// assert!(outcome.total().as_nanos() > 0);
/// t.run_segment(SyncProtocol::Asp, 5)?;
/// # Ok::<(), sync_switch_ps::PsError>(())
/// ```
pub fn execute_switch(trainer: &mut Trainer, plan: &SwitchPlan) -> Result<SwitchOutcome, PsError> {
    // 0. Drain the data plane: on a multi-server topology any in-flight
    //    stage-2 round must finish (and a final round run) so the committed
    //    view every worker would pull equals the live state being
    //    checkpointed — a BSP↔ASP switch must not leak a half-published
    //    reconciliation across the protocol boundary.
    let td = Instant::now();
    trainer.drain_sync();
    let drain_time = td.elapsed();

    // 1. Checkpoint current state (paper: all hook managers checkpoint).
    let t0 = Instant::now();
    let ck = trainer.checkpoint();
    let checkpoint_time = t0.elapsed();

    // 2. Propagate the updated configuration (the actuator), including the
    //    plan's target protocol: the trainer's recorded protocol is what
    //    `run_current_segment` executes, so applying it here is what makes
    //    the switch *happen* rather than depending on every caller to pass
    //    the matching protocol to the next segment by hand.
    let t1 = Instant::now();
    let mut cfg = trainer.config().clone();
    cfg.per_worker_batch = plan.per_worker_batch;
    cfg.learning_rate = plan.learning_rate;
    cfg.momentum = plan.momentum;
    trainer.set_config(cfg)?;
    trainer.set_protocol(plan.to);
    let reconfigure_time = t1.elapsed();

    // 3. Relaunch from the checkpoint.
    let t2 = Instant::now();
    trainer.restore(&ck)?;
    if plan.reset_velocity {
        trainer.reset_velocity();
    }
    let restore_time = t2.elapsed();

    Ok(SwitchOutcome {
        drain_time,
        checkpoint_time,
        reconfigure_time,
        restore_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainerConfig;
    use sync_switch_nn::{Dataset, Network};

    fn trainer() -> Trainer {
        let data = Dataset::gaussian_blobs(3, 60, 5, 0.3, 21);
        let (train, test) = data.split(0.25);
        Trainer::new(
            Network::mlp(5, &[10], 3, 21),
            train,
            test,
            TrainerConfig::new(3, 12, 0.3, 0.9).with_seed(21),
        )
    }

    #[test]
    fn switch_preserves_progress_and_applies_config() {
        let mut t = trainer();
        t.run_segment(SyncProtocol::Bsp, 15).unwrap();
        let params_before = t.store().unwrap().snapshot_params();
        let plan = SwitchPlan {
            to: SyncProtocol::Asp,
            per_worker_batch: 4,
            learning_rate: 0.1,
            momentum: 0.9,
            reset_velocity: false,
        };
        let outcome = execute_switch(&mut t, &plan).unwrap();
        assert_eq!(t.global_step(), 15);
        assert_eq!(t.store().unwrap().snapshot_params(), params_before);
        assert_eq!(t.config().per_worker_batch, 4);
        assert_eq!(t.config().learning_rate, 0.1);
        assert_eq!(t.protocol(), SyncProtocol::Asp, "plan target not applied");
        assert!(outcome.total() >= outcome.checkpoint_time);
        // Training continues under the new protocol.
        let r = t.run_segment(SyncProtocol::Asp, 30).unwrap();
        assert_eq!(r.steps, 30);
        assert_eq!(t.global_step(), 45);
    }

    #[test]
    fn executed_plan_drives_the_next_segment() {
        // The regression this pins: execute_switch used to ignore
        // `SwitchPlan::to`, so the protocol that actually ran was whatever
        // the caller happened to pass next. With the plan applied to the
        // trainer, `run_current_segment` runs the plan's target.
        let mut t = trainer();
        assert_eq!(t.protocol(), SyncProtocol::Bsp, "BSP is the safe default");
        t.run_current_segment(10).unwrap();
        let plan = SwitchPlan::keep_hyper(t.config(), SyncProtocol::Asp, false);
        execute_switch(&mut t, &plan).unwrap();
        let r = t.run_current_segment(12).unwrap();
        assert_eq!(r.protocol, SyncProtocol::Asp);
        assert_eq!(t.protocol(), SyncProtocol::Asp);
        // An explicit run_segment is an implicit switch and re-records.
        t.run_segment(SyncProtocol::Bsp, 5).unwrap();
        assert_eq!(t.protocol(), SyncProtocol::Bsp);
    }

    #[test]
    fn reset_velocity_clears_momentum_state() {
        let mut t = trainer();
        t.run_segment(SyncProtocol::Bsp, 10).unwrap();
        assert!(t
            .store()
            .unwrap()
            .snapshot_velocity()
            .iter()
            .any(|&v| v != 0.0));
        let plan = SwitchPlan {
            to: SyncProtocol::Asp,
            per_worker_batch: 12,
            learning_rate: 0.3,
            momentum: 0.0,
            reset_velocity: true,
        };
        execute_switch(&mut t, &plan).unwrap();
        assert!(t
            .store()
            .unwrap()
            .snapshot_velocity()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn multi_server_switch_drains_stage2_rounds() {
        let data = Dataset::gaussian_blobs(3, 60, 5, 0.3, 22);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(3, 12, 0.3, 0.9)
            .with_seed(22)
            .with_topology(crate::config::ServerTopology::new(2, 8));
        let mut t = Trainer::new(Network::mlp(5, &[10], 3, 22), train, test, cfg);
        // An ASP segment whose push count is not a multiple of the stage-2
        // period leaves the committed view behind the live state.
        t.run_segment(SyncProtocol::Asp, 30).unwrap();
        let rounds_before = t.sync_rounds();
        let plan = SwitchPlan {
            to: SyncProtocol::Bsp,
            per_worker_batch: 12,
            learning_rate: 0.3,
            momentum: 0.9,
            reset_velocity: false,
        };
        let params_before = t.checkpoint().params;
        let outcome = execute_switch(&mut t, &plan).unwrap();
        // The switch drained in-flight stage-2 state (once before the
        // checkpoint, once inside restore) and preserved the live params.
        assert!(t.sync_rounds() > rounds_before);
        assert_eq!(t.checkpoint().params, params_before);
        assert!(outcome.total() >= outcome.drain_time);
        // BSP continues cleanly from the drained state.
        let r = t.run_segment(SyncProtocol::Bsp, 10).unwrap();
        assert_eq!(r.shard_staleness.max(), Some(0));
        assert_eq!(t.global_step(), 40);
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let mut t = trainer();
        let plan = SwitchPlan {
            to: SyncProtocol::Asp,
            per_worker_batch: 8,
            learning_rate: -1.0,
            momentum: 0.9,
            reset_velocity: false,
        };
        assert!(execute_switch(&mut t, &plan).is_err());
    }
}
