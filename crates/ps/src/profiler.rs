//! Runtime profiling: per-worker throughput and gradient staleness.
//!
//! Implements the "Job/Task/Worker Profiler" of the Sync-Switch architecture
//! (paper Fig. 9): continuously collected runtime metrics that the policy
//! manager consumes for straggler detection and switch decisions.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::config::TransportKind;

/// Per-worker step timing record.
#[derive(Debug, Clone, Default)]
pub struct WorkerProfile {
    /// Durations of every step this worker completed in a segment.
    pub step_durations: Vec<Duration>,
    /// Training losses observed by this worker (one per step).
    pub losses: Vec<f32>,
    /// Wall-clock span from the start of the worker's first step to the end
    /// of its last, *including* time spent parked at barriers or SSP gates.
    /// Zero if the worker completed no steps.
    pub wall_time: Duration,
}

impl WorkerProfile {
    /// Number of steps completed.
    pub fn steps(&self) -> usize {
        self.step_durations.len()
    }

    /// Busy-time throughput in steps per second (0 if no steps): step count
    /// over the *sum of step durations*. Under BSP a step duration excludes
    /// the barrier wait, so this is the worker's compute rate, not its
    /// delivered rate — compare with [`WorkerProfile::wall_steps_per_sec`].
    pub fn steps_per_sec(&self) -> f64 {
        let total: Duration = self.step_durations.iter().sum();
        if total.is_zero() {
            return 0.0;
        }
        self.steps() as f64 / total.as_secs_f64()
    }

    /// Wall-clock throughput in steps per second: step count over the
    /// first-step-start → last-step-end span, idle barrier waits included.
    /// This is the rate straggler detection should read — a fast worker
    /// stalled behind a straggler has a high busy rate but a low wall
    /// rate.
    ///
    /// Returns `None` when no wall span was recorded (a hand-built profile,
    /// or a worker that completed no steps). It used to fall back to the
    /// busy rate silently — handing straggler detection exactly the signal
    /// it must not trust; a caller that wants that fallback now has to
    /// spell it out with [`Option::unwrap_or_else`].
    pub fn wall_steps_per_sec(&self) -> Option<f64> {
        if self.wall_time.is_zero() {
            return None;
        }
        Some(self.steps() as f64 / self.wall_time.as_secs_f64())
    }

    /// Throughput in images per second at a given batch size (busy-time).
    pub fn images_per_sec(&self, batch: usize) -> f64 {
        self.steps_per_sec() * batch as f64
    }

    /// Mean loss over the segment (`None` if no steps).
    pub fn mean_loss(&self) -> Option<f32> {
        if self.losses.is_empty() {
            return None;
        }
        Some(self.losses.iter().sum::<f32>() / self.losses.len() as f32)
    }

    /// Loss of the most recent step.
    pub fn last_loss(&self) -> Option<f32> {
        self.losses.last().copied()
    }
}

/// Aggregate wire cost of one operation class (push / pull / sync) on a
/// transport-backed data plane: how many round trips were made, how long
/// the caller spent blocked on the wire, and how many payload bytes moved
/// in each direction (codec-level — framing overhead excluded so the two
/// backends report comparable volumes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireOp {
    /// Completed request/reply round trips.
    pub ops: u64,
    /// Total nanoseconds spent blocked on the wire (encode → reply
    /// decoded).
    pub wire_ns: u64,
    /// Request payload bytes sent.
    pub bytes_out: u64,
    /// Reply payload bytes received.
    pub bytes_in: u64,
}

impl WireOp {
    /// Mean wire time per operation, in microseconds (0 if no ops).
    pub fn mean_us(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.wire_ns as f64 / self.ops as f64 / 1e3
    }

    /// Total wire time in seconds.
    pub fn total_s(&self) -> f64 {
        self.wire_ns as f64 / 1e9
    }

    /// Payload bytes per round trip, both directions (0 if no ops).
    pub fn mean_round_trip_bytes(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        (self.bytes_out + self.bytes_in) as f64 / self.ops as f64
    }

    /// One `(bytes_per_op, seconds_per_op)` calibration sample, or `None`
    /// if this class saw no traffic. Bytes are the round-trip payload
    /// volume — the quantity a latency+bandwidth cost model prices.
    pub fn sample(&self) -> Option<(f64, f64)> {
        if self.ops == 0 {
            return None;
        }
        Some((
            self.mean_round_trip_bytes(),
            self.wire_ns as f64 / self.ops as f64 / 1e9,
        ))
    }

    /// The counters accumulated since `earlier` (used to scope segment
    /// reports: the plane's counters are cumulative).
    pub fn delta(&self, earlier: &WireOp) -> WireOp {
        WireOp {
            ops: self.ops.saturating_sub(earlier.ops),
            wire_ns: self.wire_ns.saturating_sub(earlier.wire_ns),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
        }
    }
}

/// Measured wire cost of a training segment on a transport-backed data
/// plane, broken out by operation class. On an in-process plane
/// (`backend == None`) every counter is zero — the boundary does not
/// exist there, which is exactly the comparison the bench transport axis
/// makes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Which backend produced these numbers (`None` for in-process).
    pub backend: Option<TransportKind>,
    /// Stage-1 gradient pushes (one round trip per shard per push).
    pub push: WireOp,
    /// Committed-view pulls (one round trip per server per pull).
    pub pull: WireOp,
    /// Stage-2 reconciliation rounds and drains (one round trip per server
    /// per round).
    pub sync: WireOp,
    /// Failed attempts that were re-sent by the resilience layer. Zero on a
    /// clean network — retry machinery must be free when nothing fails.
    pub retries: u64,
    /// Connections re-established after breaking mid-segment.
    pub reconnects: u64,
}

impl TransportStats {
    /// Whether a wire boundary was active at all.
    pub fn is_active(&self) -> bool {
        self.backend.is_some()
    }

    /// Total round trips across all classes.
    pub fn total_ops(&self) -> u64 {
        self.push.ops + self.pull.ops + self.sync.ops
    }

    /// Total time spent blocked on the wire, in seconds.
    pub fn total_wire_s(&self) -> f64 {
        self.push.total_s() + self.pull.total_s() + self.sync.total_s()
    }

    /// Total payload bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        let t = |w: &WireOp| w.bytes_out + w.bytes_in;
        t(&self.push) + t(&self.pull) + t(&self.sync)
    }

    /// The counters accumulated since `earlier` (same backend assumed).
    pub fn delta(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            backend: self.backend,
            push: self.push.delta(&earlier.push),
            pull: self.pull.delta(&earlier.pull),
            sync: self.sync.delta(&earlier.sync),
            retries: self.retries.saturating_sub(earlier.retries),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
        }
    }

    /// Per-class `(bytes_per_op, seconds_per_op)` calibration samples —
    /// the input `cluster::NetworkModel::fit_wire_samples` fits its
    /// latency/bandwidth constants to. Push and pull frames differ in size
    /// by orders of magnitude, which is what makes the two-parameter fit
    /// identifiable.
    pub fn latency_samples(&self) -> Vec<(f64, f64)> {
        [&self.push, &self.pull, &self.sync]
            .into_iter()
            .filter_map(WireOp::sample)
            .collect()
    }
}

/// Histogram of measured gradient staleness (versions behind at push time).
///
/// Under BSP every entry is 0 by construction; under ASP with `n` workers
/// the mass concentrates around `n − 1` — the paper's stale-gradient effect,
/// measured rather than assumed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StalenessHistogram {
    counts: BTreeMap<u64, u64>,
}

impl StalenessHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one staleness observation.
    pub fn record(&mut self, staleness: u64) {
        *self.counts.entry(staleness).or_insert(0) += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &StalenessHistogram) {
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Mean staleness (0 if empty).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().map(|(&k, &v)| k * v).sum();
        sum as f64 / total as f64
    }

    /// Maximum observed staleness (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Fraction of observations that were perfectly fresh (staleness 0).
    pub fn fresh_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let fresh = self.counts.get(&0).copied().unwrap_or(0);
        fresh as f64 / total as f64
    }

    /// Iterates over `(staleness, count)` pairs in increasing staleness.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

/// Per-shard staleness histograms: one [`StalenessHistogram`] per parameter
/// shard, recording how many shard applies landed between a worker's pull of
/// that shard and its push to it.
///
/// With per-shard version clocks this is measured independently of the
/// global clock: a shard-granular push observes exactly the applies that
/// beat it to *that* shard. Under BSP every entry is 0 by construction
/// (stripes apply once per barrier round); under ASP the per-shard mass
/// mirrors the global histogram, and under SSP the gate's iteration bound
/// caps it per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStaleness {
    per_shard: Vec<StalenessHistogram>,
}

impl ShardStaleness {
    /// Creates histograms for `shards` shards.
    pub fn new(shards: usize) -> Self {
        ShardStaleness {
            per_shard: vec![StalenessHistogram::new(); shards],
        }
    }

    /// Number of shards tracked.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// Records one observation for `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn record(&mut self, shard: usize, staleness: u64) {
        self.per_shard[shard].record(staleness);
    }

    /// Merges another per-shard record into this one, growing to the larger
    /// shard count if they differ.
    pub fn merge(&mut self, other: &ShardStaleness) {
        if other.per_shard.len() > self.per_shard.len() {
            self.per_shard
                .resize_with(other.per_shard.len(), StalenessHistogram::new);
        }
        for (mine, theirs) in self.per_shard.iter_mut().zip(&other.per_shard) {
            mine.merge(theirs);
        }
    }

    /// Histogram for one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &StalenessHistogram {
        &self.per_shard[shard]
    }

    /// Total observations across all shards.
    pub fn total(&self) -> u64 {
        self.per_shard.iter().map(StalenessHistogram::total).sum()
    }

    /// Maximum staleness observed on any shard (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        self.per_shard
            .iter()
            .filter_map(StalenessHistogram::max)
            .max()
    }

    /// Mean staleness across all shards' observations (0 if empty).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .per_shard
            .iter()
            .map(|h| h.mean() * h.total() as f64)
            .sum();
        sum / total as f64
    }

    /// Iterates over the per-shard histograms in shard order.
    pub fn iter(&self) -> impl Iterator<Item = &StalenessHistogram> + '_ {
        self.per_shard.iter()
    }
}

/// Per-server, per-shard staleness: one [`ShardStaleness`] per parameter
/// server, each indexed by *global* shard id (a server only ever records
/// observations for the shards it owns, so the off-owner histograms stay
/// empty).
///
/// This is the multi-server face of the staleness profile: under the
/// two-stage protocol an observation for shard `g` on server `s` counts the
/// stage-1 applies that landed on `s`'s live copy of `g` between the
/// worker's pull (of the committed view) and its push — the quantity the
/// per-shard SSP bound must hold down *per server*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerShardStaleness {
    per_server: Vec<ShardStaleness>,
}

impl ServerShardStaleness {
    /// Creates empty records for `servers` servers × `shards` global shards.
    pub fn new(servers: usize, shards: usize) -> Self {
        ServerShardStaleness {
            per_server: vec![ShardStaleness::new(shards); servers],
        }
    }

    /// Number of servers tracked.
    pub fn server_count(&self) -> usize {
        self.per_server.len()
    }

    /// Records one observation for global shard `shard` owned by `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server` or `shard` is out of range.
    pub fn record(&mut self, server: usize, shard: usize, staleness: u64) {
        self.per_server[server].record(shard, staleness);
    }

    /// Merges another record into this one, growing to the larger server
    /// count if they differ.
    pub fn merge(&mut self, other: &ServerShardStaleness) {
        if other.per_server.len() > self.per_server.len() {
            self.per_server
                .resize_with(other.per_server.len(), ShardStaleness::default);
        }
        for (mine, theirs) in self.per_server.iter_mut().zip(&other.per_server) {
            mine.merge(theirs);
        }
    }

    /// The per-shard record for one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn server(&self, server: usize) -> &ShardStaleness {
        &self.per_server[server]
    }

    /// Total observations across all servers and shards.
    pub fn total(&self) -> u64 {
        self.per_server.iter().map(ShardStaleness::total).sum()
    }

    /// Maximum staleness observed on any server's shard (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        self.per_server.iter().filter_map(ShardStaleness::max).max()
    }

    /// Collapses the server dimension into one per-shard record (each
    /// global shard is owned by exactly one server, so this is a disjoint
    /// union, not a double count).
    pub fn flatten(&self) -> ShardStaleness {
        let mut out = ShardStaleness::default();
        for per_shard in &self.per_server {
            out.merge(per_shard);
        }
        out
    }

    /// Iterates over the per-server records in server order.
    pub fn iter(&self) -> impl Iterator<Item = &ShardStaleness> + '_ {
        self.per_server.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_throughput() {
        let p = WorkerProfile {
            step_durations: vec![Duration::from_millis(10); 20],
            losses: vec![1.0; 20],
            wall_time: Duration::from_millis(200),
        };
        assert_eq!(p.steps(), 20);
        assert!((p.steps_per_sec() - 100.0).abs() < 1.0);
        assert!((p.images_per_sec(32) - 3200.0).abs() < 50.0);
        assert_eq!(p.mean_loss(), Some(1.0));
    }

    #[test]
    fn wall_rate_counts_idle_time_busy_rate_does_not() {
        // 20 steps of 10ms compute, but the worker spent 400ms wall-clock:
        // half its time parked at barriers. The busy rate says 100 steps/s;
        // the wall rate says 50 — the delivered throughput a straggler
        // detector must look at, since idle waits hide in the busy rate.
        let p = WorkerProfile {
            step_durations: vec![Duration::from_millis(10); 20],
            losses: vec![1.0; 20],
            wall_time: Duration::from_millis(400),
        };
        assert!((p.steps_per_sec() - 100.0).abs() < 1e-9);
        assert!((p.wall_steps_per_sec().unwrap() - 50.0).abs() < 1e-9);
        // Without a recorded wall span there is no wall rate — the old
        // silent fall-back to the busy rate hid exactly the idle time a
        // straggler detector needs to see.
        let p = WorkerProfile {
            step_durations: vec![Duration::from_millis(10); 4],
            losses: vec![1.0; 4],
            wall_time: Duration::ZERO,
        };
        assert_eq!(p.wall_steps_per_sec(), None);
        assert!(p.steps_per_sec() > 0.0, "busy rate still available");
    }

    #[test]
    fn empty_profile() {
        let p = WorkerProfile::default();
        assert_eq!(p.steps_per_sec(), 0.0);
        assert_eq!(p.wall_steps_per_sec(), None);
        assert_eq!(p.mean_loss(), None);
        assert_eq!(p.last_loss(), None);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = StalenessHistogram::new();
        for s in [0, 0, 1, 7, 7, 7] {
            h.record(s);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.max(), Some(7));
        assert!((h.mean() - 22.0 / 6.0).abs() < 1e-12);
        assert!((h.fresh_fraction() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = StalenessHistogram::new();
        a.record(0);
        a.record(3);
        let mut b = StalenessHistogram::new();
        b.record(3);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 1), (3, 2), (5, 1)]);
    }

    #[test]
    fn empty_histogram() {
        let h = StalenessHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        assert_eq!(h.fresh_fraction(), 0.0);
    }

    #[test]
    fn shard_staleness_records_per_shard() {
        let mut s = ShardStaleness::new(3);
        s.record(0, 0);
        s.record(0, 4);
        s.record(2, 2);
        assert_eq!(s.shard_count(), 3);
        assert_eq!(s.total(), 3);
        assert_eq!(s.max(), Some(4));
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.shard(0).total(), 2);
        assert_eq!(s.shard(1).total(), 0);
        assert_eq!(s.shard(2).max(), Some(2));
    }

    #[test]
    fn server_shard_staleness_partitions_by_owner() {
        let mut s = ServerShardStaleness::new(2, 4);
        // Server 0 owns shards 0-1, server 1 owns shards 2-3.
        s.record(0, 0, 0);
        s.record(0, 1, 3);
        s.record(1, 2, 5);
        assert_eq!(s.server_count(), 2);
        assert_eq!(s.total(), 3);
        assert_eq!(s.max(), Some(5));
        assert_eq!(s.server(0).max(), Some(3));
        assert_eq!(s.server(1).max(), Some(5));
        assert_eq!(s.server(0).shard(2).total(), 0);
        // Flatten is a disjoint union over owners.
        let flat = s.flatten();
        assert_eq!(flat.total(), 3);
        assert_eq!(flat.shard(1).max(), Some(3));
        assert_eq!(flat.shard(2).max(), Some(5));
        // Merge grows the server dimension.
        let mut small = ServerShardStaleness::new(1, 4);
        small.record(0, 0, 1);
        small.merge(&s);
        assert_eq!(small.server_count(), 2);
        assert_eq!(small.total(), 4);
    }

    #[test]
    fn shard_staleness_merge_grows() {
        let mut a = ShardStaleness::new(1);
        a.record(0, 1);
        let mut b = ShardStaleness::new(3);
        b.record(2, 5);
        a.merge(&b);
        assert_eq!(a.shard_count(), 3);
        assert_eq!(a.total(), 2);
        assert_eq!(a.max(), Some(5));
        // Merging an empty record is a no-op.
        let before = a.clone();
        a.merge(&ShardStaleness::new(0));
        assert_eq!(a, before);
    }
}
