//! A divergence watchdog over the trainer loop: watches each segment's
//! loss trajectory and finiteness, and on a blow-up rolls back to the last
//! good checkpoint and demotes ASP to BSP through the existing switcher.
//!
//! This automates the paper's observation that ASP diverges at learning
//! rates BSP tolerates (experiment setup 3): instead of aborting the run
//! with [`PsError::Diverged`], the watchdog converts the divergence into a
//! rollback plus a permanent demotion to the safe protocol, so training
//! completes — at BSP speed — rather than dying.

use sync_switch_telemetry::TraceKind;
use sync_switch_workloads::SyncProtocol;

use crate::checkpoint::Checkpoint;
use crate::engine::{SegmentReport, Trainer};
use crate::error::PsError;
use crate::switcher::{execute_switch, SwitchPlan};

/// Tuning for [`DivergenceWatchdog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// A segment whose mean tail loss exceeds `blowup_factor` times the
    /// best loss seen so far counts as diverging (in addition to any
    /// non-finite signal).
    pub blowup_factor: f32,
    /// Floor applied to the best loss before multiplying, so noise around
    /// an already-tiny loss cannot trip the watchdog.
    pub loss_floor: f32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            blowup_factor: 4.0,
            loss_floor: 0.05,
        }
    }
}

/// Wraps [`Trainer::run_segment`] with rollback-and-demote semantics.
///
/// Per segment: run under the requested protocol (or BSP forever once
/// demoted), then judge the outcome. A segment diverges if the trainer
/// returned [`PsError::Diverged`], the report's [`SegmentReport::finite`]
/// check failed, or the tail loss blew past the configured factor of the
/// best loss so far. On divergence the watchdog restores the best-loss
/// checkpoint, executes an ASP→BSP [`SwitchPlan`] (same hyperparameters,
/// velocity reset — the stale momentum is part of what blew up), and
/// re-runs the segment under BSP.
///
/// The rollback target is the checkpoint of the **best** segment, not the
/// most recent passing one: a segment can clear the blow-up check while
/// its parameters are already destabilizing, and rolling back to such a
/// state would hand the demoted BSP re-run a poisoned starting point.
/// Rolling back to the best loss costs more replayed steps but guarantees
/// the re-run starts from a state that demonstrably trained well.
#[derive(Debug)]
pub struct DivergenceWatchdog {
    cfg: WatchdogConfig,
    /// Best (lowest) finite tail loss observed across good segments.
    best_loss: f32,
    /// Rollback target: the checkpoint of the best segment so far.
    last_good: Option<Checkpoint>,
    /// Once true, every future segment runs under BSP.
    demoted: bool,
    /// Number of divergences handled.
    trips: u32,
}

impl DivergenceWatchdog {
    /// A watchdog with the given thresholds, no checkpoint yet.
    pub fn new(cfg: WatchdogConfig) -> Self {
        DivergenceWatchdog {
            cfg,
            best_loss: f32::INFINITY,
            last_good: None,
            demoted: false,
            trips: 0,
        }
    }

    /// Whether the watchdog has demoted the run to BSP.
    pub fn demoted(&self) -> bool {
        self.demoted
    }

    /// Divergences handled so far.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Runs one guarded segment of `steps` steps under `requested` (BSP if
    /// already demoted). See the type docs for the divergence handling.
    ///
    /// # Errors
    ///
    /// Propagates non-divergence errors, and any error from the rollback,
    /// the switch, or the demoted re-run itself.
    pub fn run_segment(
        &mut self,
        trainer: &mut Trainer,
        requested: SyncProtocol,
        steps: u64,
    ) -> Result<SegmentReport, PsError> {
        // Guarantee a rollback target even for a first-segment blow-up.
        if self.last_good.is_none() {
            self.last_good = Some(trainer.checkpoint());
        }
        let effective = if self.demoted {
            SyncProtocol::Bsp
        } else {
            requested
        };
        match trainer.run_segment(effective, steps) {
            Ok(report) => {
                if self.blown(&report) {
                    return self.demote_and_rerun(trainer, effective, steps);
                }
                self.adopt_if_best(trainer, &report);
                Ok(report)
            }
            Err(PsError::Diverged { .. }) => self.demote_and_rerun(trainer, effective, steps),
            Err(e) => Err(e),
        }
    }

    fn blown(&self, report: &SegmentReport) -> bool {
        if report.steps == 0 {
            return false;
        }
        if !report.finite || !report.final_loss.is_finite() {
            return true;
        }
        // The loss-trajectory check only guards the risky protocol: after
        // demotion the segments are already BSP, and a noisy-but-finite
        // BSP loss at a high learning rate is not a divergence signal.
        !self.demoted
            && report.final_loss > self.cfg.blowup_factor * self.best_loss.max(self.cfg.loss_floor)
    }

    /// Adopts a passing segment's endpoint as the rollback target when its
    /// tail loss is the new best (shared by the normal path and the
    /// demoted re-run — the re-run used to skip this, leaving a later trip
    /// to roll back to the stale pre-demotion checkpoint and replay every
    /// post-demotion step).
    fn adopt_if_best(&mut self, trainer: &Trainer, report: &SegmentReport) {
        if report.steps > 0 && report.final_loss.is_finite() && report.final_loss <= self.best_loss
        {
            self.best_loss = report.final_loss;
            self.last_good = Some(trainer.checkpoint());
        }
    }

    fn demote_and_rerun(
        &mut self,
        trainer: &mut Trainer,
        from: SyncProtocol,
        steps: u64,
    ) -> Result<SegmentReport, PsError> {
        self.trips += 1;
        self.demoted = true;
        if let Some(t) = trainer.telemetry() {
            t.metrics.counter("watchdog.rollbacks").inc();
            t.trace.instant(TraceKind::WatchdogRollback {
                trips: u64::from(self.trips),
            });
            t.trace.instant(TraceKind::ProtocolSwitch {
                from: from.to_string(),
                to: SyncProtocol::Bsp.to_string(),
                reason: format!(
                    "watchdog trip #{}: divergence under {from}, rolling back to best loss {:.4}",
                    self.trips, self.best_loss
                ),
            });
        }
        if let Some(ck) = &self.last_good {
            trainer.restore(ck)?;
        }
        // Same hyper-parameters, velocity reset — the stale momentum is
        // part of what blew up.
        let plan = SwitchPlan::keep_hyper(trainer.config(), SyncProtocol::Bsp, true);
        execute_switch(trainer, &plan)?;
        // The re-run is judged like any other segment: a demoted BSP re-run
        // that itself went non-finite is a divergence, not a success.
        let report = trainer.run_segment(SyncProtocol::Bsp, steps)?;
        if self.blown(&report) {
            return Err(PsError::Diverged {
                step: trainer.global_step(),
            });
        }
        self.adopt_if_best(trainer, &report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainerConfig;
    use sync_switch_nn::{Dataset, Network};

    fn trainer(lr: f64) -> Trainer {
        let data = Dataset::gaussian_blobs(4, 96, 6, 0.35, 11);
        let (train, test) = data.split(0.25);
        Trainer::new(
            Network::mlp(6, &[12], 4, 11),
            train,
            test,
            TrainerConfig::new(3, 8, lr, 0.9),
        )
    }

    #[test]
    fn good_segments_pass_through_untouched() {
        let mut t = trainer(0.05);
        let mut dog = DivergenceWatchdog::new(WatchdogConfig::default());
        let r = dog
            .run_segment(&mut t, SyncProtocol::Asp, 30)
            .expect("healthy segment");
        assert_eq!(r.protocol, SyncProtocol::Asp);
        assert!(!dog.demoted());
        assert_eq!(dog.trips(), 0);
    }

    #[test]
    fn divergence_demotes_to_bsp_and_completes() {
        // Warm up at a healthy rate so the watchdog holds a good
        // checkpoint, then raise the rate to one where ASP's stale
        // momentum updates blow up while synchronous averaged updates
        // hold — the paper's experiment-setup-3 regime.
        let mut t = trainer(0.05);
        let mut dog = DivergenceWatchdog::new(WatchdogConfig::default());
        dog.run_segment(&mut t, SyncProtocol::Asp, 30)
            .expect("warm-up segment");
        assert!(!dog.demoted());
        let mut cfg = t.config().clone();
        cfg.learning_rate = 30.0;
        t.set_config(cfg).expect("reconfigure");
        let mut saw_trip = false;
        for _ in 0..6 {
            let r = dog
                .run_segment(&mut t, SyncProtocol::Asp, 40)
                .expect("watchdog must absorb the divergence");
            assert!(r.finite, "watchdog returned a non-finite segment");
            if dog.demoted() {
                saw_trip = true;
                assert_eq!(
                    r.protocol,
                    SyncProtocol::Bsp,
                    "demoted runs must be BSP re-runs"
                );
            }
        }
        assert!(saw_trip, "lr 30 ASP never tripped the watchdog");
        assert!(dog.trips() >= 1);
        assert!(t.check_finite(), "final parameters must be finite");
        assert_eq!(
            t.protocol(),
            SyncProtocol::Bsp,
            "demotion must leave the trainer's recorded protocol at BSP"
        );
        // Every trip left a rollback + demotion event pair on the bus.
        let bus = t.telemetry().expect("telemetry defaults on");
        let counts = bus.trace.counts_by_name();
        let trips = u64::from(dog.trips());
        assert_eq!(counts.get("watchdog_rollback"), Some(&trips));
        assert_eq!(counts.get("protocol_switch"), Some(&trips));
        let snap = bus.metrics.snapshot();
        assert_eq!(snap.counters.get("watchdog.rollbacks"), Some(&trips));
    }

    /// Poisons the live parameters with a NaN so the next segment returns
    /// `PsError::Diverged` deterministically — the watchdog sees exactly
    /// what a real blow-up produces, without needing a learning rate that
    /// also destabilizes the BSP re-run.
    fn poison(t: &mut Trainer) {
        let mut ck = t.checkpoint();
        ck.params[0] = f32::NAN;
        t.restore(&ck).expect("poisoned restore");
    }

    #[test]
    fn second_trip_rolls_back_to_the_post_demotion_checkpoint() {
        // The regression this pins: the demoted BSP re-run was returned
        // without being judged, and `best_loss`/`last_good` were never
        // updated afterwards — so a second trip rolled back to the stale
        // pre-demotion checkpoint and replayed every post-demotion step.
        let mut t = trainer(0.05);
        let mut dog = DivergenceWatchdog::new(WatchdogConfig::default());
        dog.run_segment(&mut t, SyncProtocol::Asp, 30)
            .expect("warm-up segment");
        assert_eq!(t.global_step(), 30);

        // Trip 1: rollback to the step-30 checkpoint, 40-step BSP re-run.
        poison(&mut t);
        let r = dog
            .run_segment(&mut t, SyncProtocol::Asp, 40)
            .expect("first trip absorbed");
        assert_eq!(dog.trips(), 1);
        assert!(dog.demoted());
        assert!(r.finite, "re-run must be judged, not returned blind");
        assert_eq!(t.global_step(), 70);

        // Trip 2: the rollback target must be the judged re-run's endpoint
        // (step 70, training at the healthy rate kept improving the loss),
        // not the stale step-30 checkpoint.
        poison(&mut t);
        let r = dog
            .run_segment(&mut t, SyncProtocol::Asp, 40)
            .expect("second trip absorbed");
        assert_eq!(dog.trips(), 2);
        assert!(r.finite);
        assert_eq!(
            t.global_step(),
            110,
            "second trip replayed from the stale pre-demotion checkpoint"
        );
    }
}
