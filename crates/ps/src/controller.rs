//! The online adaptive sync controller: the closed loop over the telemetry
//! bus.
//!
//! The paper's Sync-Switch policy picks its BSP→ASP switch point *offline*
//! (timer or loss threshold decided before the run). This module closes the
//! loop online, in the spirit of the follow-up ACE-Sync direction: after
//! every segment the controller scrapes the **already-emitted named
//! signals** — the `engine.step_ns` / `engine.barrier_wait_ns` /
//! `engine.staleness` histograms, the `wire.retries` / `wire.sync_rounds`
//! counters, the `watchdog.rollbacks` counter, per-server reachability from
//! [`NetRouter::scrape_all_stats`], and the loss trajectory — and decides
//! whether to promote BSP→ASP (barrier-dominated and loss stable), demote
//! ASP→BSP (wire distress or divergence risk), or hold. There is no side
//! channel: every input to [`SyncController::decide`] is a signal any
//! telemetry scraper could read off the bus.
//!
//! Switches go through the same actuator as everything else —
//! [`execute_switch`] with a [`SwitchPlan`] — and every decision lands as a
//! [`TraceKind::ProtocolSwitch`] event carrying the human-readable reason.
//! The [`DivergenceWatchdog`] is absorbed as the controller's safety net:
//! segments run under it, and once it demotes, the controller holds BSP
//! forever (the hot-learning-rate specimen stays safe).
//!
//! The controller also retunes the SSP staleness bound from the measured
//! `engine.staleness` distribution: [`SyncController::ssp_bound`] tracks
//! `ceil(mean staleness) + margin`, clamped, so an SSP tier can be driven
//! with a bound grounded in what the cluster actually exhibits.

use sync_switch_telemetry::{MetricsSnapshot, TraceKind};
use sync_switch_workloads::SyncProtocol;

use crate::engine::{SegmentReport, Trainer};
use crate::error::PsError;
use crate::switcher::{execute_switch, SwitchPlan};
use crate::watchdog::{DivergenceWatchdog, WatchdogConfig};

/// Tuning for [`SyncController`]. Every threshold is expressed against a
/// named telemetry signal so a decision can always be traced back to the
/// scrape that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Segments to observe before the first promote decision — the loss
    /// trajectory needs at least one finite best before "stable" means
    /// anything.
    pub warmup_segments: u64,
    /// Promote BSP→ASP when the segment's barrier-wait fraction
    /// (`engine.barrier_wait_ns / (engine.barrier_wait_ns +
    /// engine.step_ns)`) reaches this value.
    pub promote_barrier_frac: f64,
    /// Promotion also requires the segment's tail loss to sit within this
    /// slack factor of the best loss so far (loss stable, not recovering).
    pub promote_loss_slack: f32,
    /// Demote ASP→BSP when a segment's `wire.retries` delta exceeds this;
    /// under BSP the same signal blocks promotion.
    pub demote_retry_limit: u64,
    /// Demote ASP→BSP when the segment's tail loss exceeds this factor of
    /// the best loss — a divergence-risk trigger deliberately tighter than
    /// the watchdog's blow-up factor, so the controller usually acts first.
    pub demote_loss_factor: f32,
    /// Demote ASP→BSP when the measured mean `engine.staleness` exceeds
    /// this.
    pub demote_staleness_limit: f64,
    /// Floor applied to the best loss in the stability and divergence
    /// checks, so noise around an already-tiny loss cannot flip decisions.
    pub loss_floor: f32,
    /// Retuned SSP bound = `ceil(mean staleness) + ssp_margin`.
    pub ssp_margin: u64,
    /// Clamp for the retuned SSP bound.
    pub max_ssp_bound: u64,
    /// Thresholds for the embedded safety-net watchdog.
    pub watchdog: WatchdogConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            warmup_segments: 1,
            promote_barrier_frac: 0.25,
            promote_loss_slack: 1.25,
            demote_retry_limit: 4,
            demote_loss_factor: 3.0,
            demote_staleness_limit: 16.0,
            loss_floor: 0.05,
            ssp_margin: 1,
            max_ssp_bound: 32,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// One segment's worth of scraped signals — deltas of the named metrics
/// over the segment, plus the loss trajectory endpoint. This is the
/// **entire** input to [`SyncController::decide`]; building it from a
/// metrics snapshot pair is [`ScrapedSignals::between`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedSignals {
    /// `engine.step_ns` histogram sum delta (worker busy time).
    pub step_ns: u64,
    /// `engine.barrier_wait_ns` histogram sum delta.
    pub barrier_ns: u64,
    /// `engine.staleness` histogram count delta.
    pub staleness_count: u64,
    /// `engine.staleness` histogram sum delta.
    pub staleness_sum: u64,
    /// `wire.retries` counter delta.
    pub retries: u64,
    /// `wire.sync_rounds` counter delta.
    pub sync_rounds: u64,
    /// `watchdog.rollbacks` counter delta.
    pub rollbacks: u64,
    /// Servers that failed the end-of-segment stats scrape
    /// ([`NetRouter::scrape_all_stats`] returned `None` for them); zero on
    /// an in-process plane.
    pub unreachable_servers: usize,
    /// Tail loss of the segment (the loss trajectory endpoint).
    pub final_loss: f32,
    /// Whether the segment's finiteness check passed.
    pub finite: bool,
}

impl ScrapedSignals {
    /// Deltas of the named signals between two metrics snapshots.
    /// `final_loss` / `finite` come from the segment report (the loss
    /// trajectory is itself an emitted signal — `SegmentReport` is what the
    /// report sinks serialize); `unreachable_servers` from the router
    /// scrape.
    pub fn between(
        before: &MetricsSnapshot,
        after: &MetricsSnapshot,
        report: &SegmentReport,
        unreachable_servers: usize,
    ) -> Self {
        let counter = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        let hist = |name: &str| {
            let b = before.histograms.get(name);
            let a = after.histograms.get(name);
            let count = a.map_or(0, |h| h.count) - b.map_or(0, |h| h.count);
            let sum = a.map_or(0, |h| h.sum) - b.map_or(0, |h| h.sum);
            (count, sum)
        };
        let (_, step_ns) = hist("engine.step_ns");
        let (_, barrier_ns) = hist("engine.barrier_wait_ns");
        let (staleness_count, staleness_sum) = hist("engine.staleness");
        ScrapedSignals {
            step_ns,
            barrier_ns,
            staleness_count,
            staleness_sum,
            retries: counter("wire.retries"),
            sync_rounds: counter("wire.sync_rounds"),
            rollbacks: counter("watchdog.rollbacks"),
            unreachable_servers,
            final_loss: report.final_loss,
            finite: report.finite,
        }
    }

    /// Fraction of worker time spent waiting at the barrier:
    /// `barrier_ns / (barrier_ns + step_ns)`. Zero when nothing was
    /// recorded.
    pub fn barrier_fraction(&self) -> f64 {
        let total = self.barrier_ns + self.step_ns;
        if total == 0 {
            0.0
        } else {
            self.barrier_ns as f64 / total as f64
        }
    }

    /// Mean of the `engine.staleness` delta; zero when no pushes recorded
    /// staleness this segment.
    pub fn mean_staleness(&self) -> f64 {
        if self.staleness_count == 0 {
            0.0
        } else {
            self.staleness_sum as f64 / self.staleness_count as f64
        }
    }
}

/// The outcome of one [`SyncController::decide`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncDecision {
    /// Keep the current protocol.
    Hold {
        /// Why the controller held.
        reason: String,
    },
    /// Switch to `to` before the next segment.
    Switch {
        /// The protocol to switch to.
        to: SyncProtocol,
        /// Why the controller is switching.
        reason: String,
    },
}

impl SyncDecision {
    /// The human-readable reason, whichever arm this is.
    pub fn reason(&self) -> &str {
        match self {
            SyncDecision::Hold { reason } | SyncDecision::Switch { reason, .. } => reason,
        }
    }
}

/// One applied decision, as recorded in [`SyncController::decisions`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Zero-based index of the segment the decision observed.
    pub segment: u64,
    /// Protocol the segment ran under (after any watchdog demotion).
    pub from: SyncProtocol,
    /// Protocol the next segment will run under.
    pub to: SyncProtocol,
    /// The SSP bound as retuned after this segment.
    pub ssp_bound: u64,
    /// Why.
    pub reason: String,
}

impl DecisionRecord {
    /// Whether this decision changed the protocol.
    pub fn switched(&self) -> bool {
        self.from != self.to
    }
}

/// The closed loop: wraps segment execution, scrapes the bus, decides, and
/// actuates switches through [`execute_switch`].
///
/// Segments run under the embedded [`DivergenceWatchdog`], so a blow-up
/// inside a segment is rolled back and demoted before the controller even
/// sees the report; once the watchdog has demoted, the controller holds BSP
/// for the rest of the run.
#[derive(Debug)]
pub struct SyncController {
    cfg: ControllerConfig,
    watchdog: DivergenceWatchdog,
    /// Best (lowest) finite tail loss seen across segments.
    best_loss: f32,
    /// Segments observed so far.
    segments: u64,
    /// Current retuned SSP bound.
    ssp_bound: u64,
    decisions: Vec<DecisionRecord>,
}

impl Default for SyncController {
    fn default() -> Self {
        SyncController::new(ControllerConfig::default())
    }
}

impl SyncController {
    /// A controller with the given policy, no observations yet.
    pub fn new(cfg: ControllerConfig) -> Self {
        SyncController {
            watchdog: DivergenceWatchdog::new(cfg.watchdog),
            cfg,
            best_loss: f32::INFINITY,
            segments: 0,
            ssp_bound: 1,
            decisions: Vec::new(),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Every decision taken so far, in order.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// The current SSP staleness bound, retuned from the measured
    /// `engine.staleness` distribution.
    pub fn ssp_bound(&self) -> u64 {
        self.ssp_bound
    }

    /// Whether the embedded watchdog has demoted the run to BSP for good.
    pub fn watchdog_demoted(&self) -> bool {
        self.watchdog.demoted()
    }

    /// Divergences the embedded watchdog absorbed.
    pub fn watchdog_trips(&self) -> u32 {
        self.watchdog.trips()
    }

    /// The pure policy: maps one segment's scraped signals to a decision.
    /// Deterministic — the same `(current, signals)` against the same
    /// controller state always yields the same decision; there is no clock,
    /// randomness, or hidden input.
    pub fn decide(&self, current: SyncProtocol, s: &ScrapedSignals) -> SyncDecision {
        if self.watchdog.demoted() || s.rollbacks > 0 {
            return SyncDecision::Hold {
                reason: format!(
                    "watchdog demoted the run ({} rollback event(s)); BSP is final",
                    s.rollbacks
                ),
            };
        }
        if !s.finite || !s.final_loss.is_finite() {
            // The watchdog absorbs non-finite segments before the
            // controller sees them; if one leaks through anyway, take the
            // safe course.
            return match current {
                SyncProtocol::Bsp => SyncDecision::Hold {
                    reason: "non-finite segment under BSP; holding".into(),
                },
                SyncProtocol::Asp => SyncDecision::Switch {
                    to: SyncProtocol::Bsp,
                    reason: "non-finite segment loss under ASP".into(),
                },
            };
        }
        let best = self.best_loss.max(self.cfg.loss_floor);
        match current {
            SyncProtocol::Bsp => {
                if self.segments < self.cfg.warmup_segments {
                    return SyncDecision::Hold {
                        reason: format!(
                            "warming up: observed segment {} of {} before first decision",
                            self.segments + 1,
                            self.cfg.warmup_segments
                        ),
                    };
                }
                if s.unreachable_servers > 0 {
                    return SyncDecision::Hold {
                        reason: format!(
                            "{} server(s) unreachable at scrape; holding BSP",
                            s.unreachable_servers
                        ),
                    };
                }
                if s.retries > self.cfg.demote_retry_limit {
                    return SyncDecision::Hold {
                        reason: format!(
                            "wire.retries {} over limit {}; holding BSP",
                            s.retries, self.cfg.demote_retry_limit
                        ),
                    };
                }
                let frac = s.barrier_fraction();
                if frac < self.cfg.promote_barrier_frac {
                    return SyncDecision::Hold {
                        reason: format!(
                            "barrier-wait fraction {frac:.3} below promote threshold {:.3}",
                            self.cfg.promote_barrier_frac
                        ),
                    };
                }
                if !self.best_loss.is_finite() {
                    return SyncDecision::Hold {
                        reason: "no finite best loss yet; loss stability unknown".into(),
                    };
                }
                if s.final_loss > self.cfg.promote_loss_slack * best {
                    return SyncDecision::Hold {
                        reason: format!(
                            "loss {:.4} not stable against best {:.4} (slack {:.2})",
                            s.final_loss, best, self.cfg.promote_loss_slack
                        ),
                    };
                }
                SyncDecision::Switch {
                    to: SyncProtocol::Asp,
                    reason: format!(
                        "barrier-wait fraction {frac:.3} >= {:.3} with stable loss \
                         {:.4} <= {:.2} x best {:.4}",
                        self.cfg.promote_barrier_frac,
                        s.final_loss,
                        self.cfg.promote_loss_slack,
                        best
                    ),
                }
            }
            SyncProtocol::Asp => {
                if s.unreachable_servers > 0 {
                    return SyncDecision::Switch {
                        to: SyncProtocol::Bsp,
                        reason: format!(
                            "{} server(s) unreachable at scrape under ASP",
                            s.unreachable_servers
                        ),
                    };
                }
                if s.retries > self.cfg.demote_retry_limit {
                    return SyncDecision::Switch {
                        to: SyncProtocol::Bsp,
                        reason: format!(
                            "wire.retries {} over limit {} under ASP",
                            s.retries, self.cfg.demote_retry_limit
                        ),
                    };
                }
                if s.final_loss > self.cfg.demote_loss_factor * best {
                    return SyncDecision::Switch {
                        to: SyncProtocol::Bsp,
                        reason: format!(
                            "divergence risk: loss {:.4} over {:.2} x best {:.4}",
                            s.final_loss, self.cfg.demote_loss_factor, best
                        ),
                    };
                }
                let staleness = s.mean_staleness();
                if s.staleness_count > 0 && staleness > self.cfg.demote_staleness_limit {
                    return SyncDecision::Switch {
                        to: SyncProtocol::Bsp,
                        reason: format!(
                            "mean engine.staleness {staleness:.2} over limit {:.2}",
                            self.cfg.demote_staleness_limit
                        ),
                    };
                }
                SyncDecision::Hold {
                    reason: format!(
                        "ASP healthy: loss {:.4}, mean staleness {staleness:.2}, \
                         {} wire retries",
                        s.final_loss, s.retries
                    ),
                }
            }
        }
    }

    /// Runs one segment of `steps` under the trainer's current protocol
    /// (via the embedded watchdog), scrapes the segment's signals off the
    /// bus, decides, and applies any switch before returning. The decision
    /// is appended to [`SyncController::decisions`] and — when it switches —
    /// emitted as a [`TraceKind::ProtocolSwitch`] event with the reason.
    ///
    /// # Errors
    ///
    /// [`PsError::InvalidConfig`] when the trainer has telemetry disabled
    /// (the controller reads *only* bus signals, so there is nothing to
    /// steer by), plus anything the watchdog-guarded segment or the switch
    /// actuator returns.
    pub fn run_segment(
        &mut self,
        trainer: &mut Trainer,
        steps: u64,
    ) -> Result<SegmentReport, PsError> {
        let before = match trainer.telemetry() {
            Some(bus) => bus.metrics.snapshot(),
            None => {
                return Err(PsError::InvalidConfig(
                    "the sync controller steers by telemetry signals; \
                     enable telemetry on the trainer"
                        .into(),
                ))
            }
        };
        let requested = trainer.protocol();
        let report = self.watchdog.run_segment(trainer, requested, steps)?;

        let after = trainer
            .telemetry()
            .expect("telemetry checked above")
            .metrics
            .snapshot();
        let unreachable = match trainer.net_router() {
            Some(router) => trainer
                .server_count()
                .saturating_sub(router.reachable_servers()),
            None => 0,
        };
        let signals = ScrapedSignals::between(&before, &after, &report, unreachable);

        // The protocol the segment actually ran under: a mid-segment
        // watchdog trip leaves the trainer demoted to BSP.
        let current = trainer.protocol();
        let decision = self.decide(current, &signals);

        // Retune the SSP bound from the measured staleness distribution.
        if signals.staleness_count > 0 {
            let tuned = signals.mean_staleness().ceil() as u64 + self.cfg.ssp_margin;
            self.ssp_bound = tuned.clamp(1, self.cfg.max_ssp_bound);
        }
        // Adopt the segment's tail loss into the trajectory *after*
        // deciding: stability is judged against the best of the segments
        // that came before.
        if report.steps > 0 && report.final_loss.is_finite() && report.final_loss < self.best_loss {
            self.best_loss = report.final_loss;
        }

        let to = match &decision {
            SyncDecision::Hold { .. } => current,
            SyncDecision::Switch { to, reason } => {
                if let Some(bus) = trainer.telemetry() {
                    bus.metrics.counter("controller.switches").inc();
                    bus.trace.instant(TraceKind::ProtocolSwitch {
                        from: current.to_string(),
                        to: to.to_string(),
                        reason: reason.clone(),
                    });
                }
                // Demotion resets velocity (stale momentum is part of the
                // risk being fled); promotion keeps it.
                let reset = *to == SyncProtocol::Bsp;
                let plan = SwitchPlan::keep_hyper(trainer.config(), *to, reset);
                execute_switch(trainer, &plan)?;
                *to
            }
        };
        self.decisions.push(DecisionRecord {
            segment: self.segments,
            from: current,
            to,
            ssp_bound: self.ssp_bound,
            reason: decision.reason().to_string(),
        });
        self.segments += 1;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainerConfig;
    use sync_switch_nn::{Dataset, Network};

    fn trainer(lr: f64) -> Trainer {
        let data = Dataset::gaussian_blobs(4, 96, 6, 0.35, 11);
        let (train, test) = data.split(0.25);
        Trainer::new(
            Network::mlp(6, &[12], 4, 11),
            train,
            test,
            TrainerConfig::new(3, 8, lr, 0.9),
        )
    }

    /// A controller mid-run: warmed up, with a finite best loss.
    fn primed(cfg: ControllerConfig) -> SyncController {
        let mut c = SyncController::new(cfg);
        c.best_loss = 0.5;
        c.segments = 3;
        c
    }

    fn signals() -> ScrapedSignals {
        ScrapedSignals {
            step_ns: 600,
            barrier_ns: 400,
            staleness_count: 10,
            staleness_sum: 20,
            retries: 0,
            sync_rounds: 4,
            rollbacks: 0,
            unreachable_servers: 0,
            final_loss: 0.48,
            finite: true,
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        // The same scraped signals against the same controller state must
        // produce byte-identical decisions — across repeated calls and
        // across independently constructed controllers.
        let cases = [
            (SyncProtocol::Bsp, signals()),
            (SyncProtocol::Asp, signals()),
            (
                SyncProtocol::Bsp,
                ScrapedSignals {
                    barrier_ns: 10,
                    ..signals()
                },
            ),
            (
                SyncProtocol::Asp,
                ScrapedSignals {
                    retries: 99,
                    ..signals()
                },
            ),
            (
                SyncProtocol::Asp,
                ScrapedSignals {
                    final_loss: 40.0,
                    ..signals()
                },
            ),
            (
                SyncProtocol::Asp,
                ScrapedSignals {
                    staleness_sum: 900,
                    ..signals()
                },
            ),
            (
                SyncProtocol::Bsp,
                ScrapedSignals {
                    unreachable_servers: 1,
                    ..signals()
                },
            ),
            (
                SyncProtocol::Asp,
                ScrapedSignals {
                    finite: false,
                    ..signals()
                },
            ),
        ];
        let a = primed(ControllerConfig::default());
        let b = primed(ControllerConfig::default());
        for (current, s) in &cases {
            let first = a.decide(*current, s);
            assert_eq!(first, a.decide(*current, s), "unstable across calls");
            assert_eq!(first, b.decide(*current, s), "unstable across instances");
        }
    }

    #[test]
    fn policy_maps_signals_to_the_documented_decisions() {
        let c = primed(ControllerConfig::default());
        // Barrier-dominated + stable loss: promote, with a reason naming
        // the signal.
        match c.decide(SyncProtocol::Bsp, &signals()) {
            SyncDecision::Switch { to, reason } => {
                assert_eq!(to, SyncProtocol::Asp);
                assert!(reason.contains("barrier-wait fraction"), "{reason}");
            }
            other => panic!("expected promote, got {other:?}"),
        }
        // Low barrier fraction: hold.
        let low = ScrapedSignals {
            barrier_ns: 10,
            ..signals()
        };
        assert!(matches!(
            c.decide(SyncProtocol::Bsp, &low),
            SyncDecision::Hold { .. }
        ));
        // Wire distress under ASP: demote on retries.
        let retried = ScrapedSignals {
            retries: 99,
            ..signals()
        };
        match c.decide(SyncProtocol::Asp, &retried) {
            SyncDecision::Switch { to, reason } => {
                assert_eq!(to, SyncProtocol::Bsp);
                assert!(reason.contains("wire.retries"), "{reason}");
            }
            other => panic!("expected demote, got {other:?}"),
        }
        // Loss blow-up risk under ASP: demote.
        let risky = ScrapedSignals {
            final_loss: 40.0,
            ..signals()
        };
        match c.decide(SyncProtocol::Asp, &risky) {
            SyncDecision::Switch { to, reason } => {
                assert_eq!(to, SyncProtocol::Bsp);
                assert!(reason.contains("divergence risk"), "{reason}");
            }
            other => panic!("expected demote, got {other:?}"),
        }
        // Excessive measured staleness under ASP: demote.
        let stale = ScrapedSignals {
            staleness_sum: 900,
            ..signals()
        };
        match c.decide(SyncProtocol::Asp, &stale) {
            SyncDecision::Switch { to, reason } => {
                assert_eq!(to, SyncProtocol::Bsp);
                assert!(reason.contains("engine.staleness"), "{reason}");
            }
            other => panic!("expected demote, got {other:?}"),
        }
        // Healthy ASP: hold.
        assert!(matches!(
            c.decide(SyncProtocol::Asp, &signals()),
            SyncDecision::Hold { .. }
        ));
    }

    #[test]
    fn warmup_blocks_the_first_promote() {
        let mut c = primed(ControllerConfig::default());
        c.segments = 0;
        match c.decide(SyncProtocol::Bsp, &signals()) {
            SyncDecision::Hold { reason } => assert!(reason.contains("warming up"), "{reason}"),
            other => panic!("expected warmup hold, got {other:?}"),
        }
    }

    #[test]
    fn closed_loop_promotes_and_records_the_reason() {
        // In-process plane: barrier waits are real (workers block on the
        // BSP barrier), so a low promote threshold is reached and the
        // controller drives the BSP→ASP switch itself.
        let mut t = trainer(0.05);
        let cfg = ControllerConfig {
            promote_barrier_frac: 0.0,
            ..ControllerConfig::default()
        };
        let mut c = SyncController::new(cfg);
        c.run_segment(&mut t, 20).expect("warm-up segment");
        assert_eq!(t.protocol(), SyncProtocol::Bsp, "warmup must hold");
        c.run_segment(&mut t, 20).expect("deciding segment");
        assert_eq!(
            t.protocol(),
            SyncProtocol::Asp,
            "stable loss + barrier-dominated BSP must promote"
        );
        let switch = c
            .decisions()
            .iter()
            .find(|d| d.switched())
            .expect("a switch decision recorded");
        assert_eq!(switch.from, SyncProtocol::Bsp);
        assert_eq!(switch.to, SyncProtocol::Asp);
        assert!(switch.reason.contains("barrier-wait fraction"));
        // The switch landed on the bus with its reason.
        let bus = t.telemetry().expect("telemetry defaults on");
        let counts = bus.trace.counts_by_name();
        assert!(counts.get("protocol_switch").copied().unwrap_or(0) >= 1);
        assert!(bus
            .trace
            .chrome_trace_json(0)
            .contains("barrier-wait fraction"));
        let snap = bus.metrics.snapshot();
        assert!(
            snap.counters
                .get("controller.switches")
                .copied()
                .unwrap_or(0)
                >= 1
        );
        // The next segment runs under the promoted protocol and its
        // measured staleness retunes the SSP bound.
        let r = c.run_segment(&mut t, 20).expect("promoted segment");
        assert_eq!(r.protocol, SyncProtocol::Asp);
        assert!(c.ssp_bound() >= 1);
    }

    #[test]
    fn watchdog_demotion_pins_bsp_forever() {
        // Poison the parameters so the watchdog inside the controller
        // trips deterministically; afterwards every decision holds BSP.
        let mut t = trainer(0.05);
        let cfg = ControllerConfig {
            promote_barrier_frac: 0.0,
            ..ControllerConfig::default()
        };
        let mut c = SyncController::new(cfg);
        c.run_segment(&mut t, 20).expect("healthy segment");
        let mut ck = t.checkpoint();
        ck.params[0] = f32::NAN;
        t.restore(&ck).expect("poisoned restore");
        let r = c
            .run_segment(&mut t, 20)
            .expect("watchdog absorbs the blow-up");
        assert!(r.finite);
        assert!(c.watchdog_demoted());
        assert_eq!(c.watchdog_trips(), 1);
        assert_eq!(t.protocol(), SyncProtocol::Bsp);
        // Even with promote conditions trivially satisfiable, demotion is
        // final.
        for _ in 0..2 {
            c.run_segment(&mut t, 20).expect("post-demotion segment");
            assert_eq!(t.protocol(), SyncProtocol::Bsp);
        }
        let last = c.decisions().last().expect("decisions recorded");
        assert!(!last.switched());
        assert!(last.reason.contains("watchdog"), "{}", last.reason);
    }

    #[test]
    fn controller_without_telemetry_is_rejected() {
        let data = Dataset::gaussian_blobs(4, 96, 6, 0.35, 11);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(3, 8, 0.05, 0.9).with_telemetry(false);
        let mut t = Trainer::new(Network::mlp(6, &[12], 4, 11), train, test, cfg);
        let mut c = SyncController::default();
        match c.run_segment(&mut t, 10) {
            Err(PsError::InvalidConfig(msg)) => assert!(msg.contains("telemetry")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
