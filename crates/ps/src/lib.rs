//! In-process multi-threaded parameter server with real BSP and ASP
//! synchronization.
//!
//! This crate is the *execution* substrate of the Sync-Switch reproduction:
//! it implements the parameter-server architecture of paper §II-A with true
//! concurrency — worker threads computing gradients on disjoint data shards,
//! a sharded parameter store with per-shard locks, barrier-aggregated BSP
//! updates, immediate ASP updates with measured gradient staleness, model
//! checkpoint/restore, and the checkpoint-switch-restart mechanism of paper
//! §V. TensorFlow's PS runtime is replaced by threads within one process;
//! the synchronization semantics (and their artifacts — stale gradients,
//! barrier waits, straggler sensitivity) are the real thing.
//!
//! # Example
//!
//! ```
//! use sync_switch_nn::{Dataset, Network};
//! use sync_switch_ps::{Trainer, TrainerConfig};
//! use sync_switch_workloads::SyncProtocol;
//!
//! let data = Dataset::gaussian_blobs(4, 64, 8, 0.3, 1);
//! let (train, test) = data.split(0.25);
//! let cfg = TrainerConfig::new(4, 16, 0.05, 0.9);
//! let mut trainer = Trainer::new(
//!     Network::mlp(8, &[16], 4, 7),
//!     train,
//!     test,
//!     cfg,
//! );
//! let report = trainer.run_segment(SyncProtocol::Bsp, 30).unwrap();
//! assert_eq!(report.steps, 30);
//! assert!(trainer.evaluate() > 0.2);
//! ```

pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod engine;
pub mod error;
pub mod profiler;
pub mod router;
pub mod server;
pub mod ssp;
pub mod store;
pub mod supervisor;
pub mod switcher;
pub mod transport;
pub mod watchdog;

pub use checkpoint::Checkpoint;
pub use config::{RetryPolicy, ServerTopology, TrainerConfig, TransportKind};
pub use controller::{
    ControllerConfig, DecisionRecord, ScrapedSignals, SyncController, SyncDecision,
};
pub use engine::{SegmentReport, Trainer};
pub use error::PsError;
pub use profiler::{
    ServerShardStaleness, ShardStaleness, StalenessHistogram, TransportStats, WireOp, WorkerProfile,
};
pub use router::{PortBuffer, RouterBuffer, ShardRouter, WorkerPort};
pub use server::PsServer;
pub use store::{PullBuffer, ShardLayout, ShardedStore, UpdateData};
pub use supervisor::ServerSupervisor;
pub use switcher::{execute_switch, SwitchOutcome, SwitchPlan};
pub use transport::{
    FaultPlan, FaultyTransport, NetPort, NetRouter, RemoteTcpTransport, ServerInfo, TcpServerHost,
};
pub use watchdog::{DivergenceWatchdog, WatchdogConfig};

// The telemetry bus every layer above records into, re-exported so binaries
// and harnesses don't need a separate dependency edge for the common types.
pub use sync_switch_telemetry::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, ServerStats, ServerStatsSnapshot,
    Telemetry, TraceKind, Tracer, HIST_BUCKETS, OPCODE_SLOTS,
};
