//! Hyper-parameters and learning-rate schedules.

use serde::{Deserialize, Serialize};

/// A piecewise-constant learning-rate decay schedule.
///
/// The paper uses the original ResNet schedule: decay by ×0.1 at 32 K steps
/// and ×0.01 at 48 K steps of a 64 K-step run (factors are relative to the
/// base rate, not cumulative).
///
/// # Example
///
/// ```
/// use sync_switch_workloads::LrSchedule;
///
/// let s = LrSchedule::piecewise(vec![(32_000, 0.1), (48_000, 0.01)]);
/// assert_eq!(s.factor_at(0), 1.0);
/// assert_eq!(s.factor_at(32_000), 0.1);
/// assert_eq!(s.factor_at(63_999), 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// `(step, factor)` boundaries, strictly increasing in step.
    boundaries: Vec<(u64, f64)>,
}

impl LrSchedule {
    /// A constant schedule (factor 1 everywhere).
    pub fn constant() -> Self {
        LrSchedule {
            boundaries: Vec::new(),
        }
    }

    /// Builds a piecewise schedule from `(boundary_step, factor)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if boundaries are not strictly increasing or a factor is not in
    /// `(0, 1]`.
    pub fn piecewise(boundaries: Vec<(u64, f64)>) -> Self {
        let mut prev = None;
        for &(step, factor) in &boundaries {
            if let Some(p) = prev {
                assert!(step > p, "boundaries must be strictly increasing");
            }
            assert!(
                factor > 0.0 && factor <= 1.0,
                "decay factor must be in (0,1], got {factor}"
            );
            prev = Some(step);
        }
        LrSchedule { boundaries }
    }

    /// The decay factor in effect at `step`.
    pub fn factor_at(&self, step: u64) -> f64 {
        let mut factor = 1.0;
        for &(boundary, f) in &self.boundaries {
            if step >= boundary {
                factor = f;
            } else {
                break;
            }
        }
        factor
    }

    /// The schedule boundaries.
    pub fn boundaries(&self) -> &[(u64, f64)] {
        &self.boundaries
    }

    /// Step of the first decay boundary, if any. The Sync-Switch divergence
    /// analysis (paper Fig. 13) pivots on this point.
    pub fn first_decay_step(&self) -> Option<u64> {
        self.boundaries.first().map(|&(s, _)| s)
    }

    /// Rescales all boundary steps by `num/den` (used when a workload is
    /// stretched to a different total step count).
    pub fn rescaled(&self, num: u64, den: u64) -> LrSchedule {
        assert!(den > 0, "denominator must be positive");
        LrSchedule {
            boundaries: self
                .boundaries
                .iter()
                .map(|&(s, f)| (s * num / den, f))
                .collect(),
        }
    }
}

/// Initial hyper-parameters provided by the deep-learning practitioner
/// (paper §IV-C assumes these as the user-supplied starting point).
///
/// `batch_size` and `learning_rate` are the *per-worker ASP* values `B` and
/// `η`; the configuration policy derives the BSP values `n·B` and `n·η`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Per-worker mini-batch size `B`.
    pub batch_size: usize,
    /// Base learning rate `η`.
    pub learning_rate: f64,
    /// SGD momentum coefficient.
    pub momentum: f64,
    /// Total training workload in steps (global parameter updates).
    pub total_steps: u64,
    /// Learning-rate decay schedule over `total_steps`.
    pub lr_schedule: LrSchedule,
}

impl HyperParams {
    /// The paper's ResNet configuration: 64 K steps, batch 128, η 0.1,
    /// momentum 0.9, decay ×0.1 @32 K and ×0.01 @48 K.
    pub fn resnet_cifar() -> Self {
        HyperParams {
            batch_size: 128,
            learning_rate: 0.1,
            momentum: 0.9,
            total_steps: 64_000,
            lr_schedule: LrSchedule::piecewise(vec![(32_000, 0.1), (48_000, 0.01)]),
        }
    }

    /// The setup-2 configuration (ResNet50/CIFAR-100): 128 K steps with the
    /// decay boundaries stretched proportionally.
    pub fn resnet_cifar100() -> Self {
        HyperParams {
            batch_size: 128,
            learning_rate: 0.1,
            momentum: 0.9,
            total_steps: 128_000,
            lr_schedule: LrSchedule::piecewise(vec![(64_000, 0.1), (96_000, 0.01)]),
        }
    }

    /// Hyper-parameters for the MLP-on-Gaussian-blobs trainable workload
    /// (the real-PS smoke workload: small batch, short constant-rate run).
    pub fn mlp_blobs() -> Self {
        HyperParams {
            batch_size: 8,
            learning_rate: 0.05,
            momentum: 0.9,
            total_steps: 240,
            lr_schedule: LrSchedule::constant(),
        }
    }

    /// Hyper-parameters for the conv-on-shifted-patterns trainable
    /// workload. Same batch and momentum as the MLP; the filter bank
    /// tolerates a slightly hotter rate because max pooling sparsifies the
    /// backward signal.
    pub fn conv_shifted() -> Self {
        HyperParams {
            batch_size: 8,
            learning_rate: 0.08,
            momentum: 0.9,
            total_steps: 240,
            lr_schedule: LrSchedule::constant(),
        }
    }

    /// Hyper-parameters for the sparse-embedding trainable workload. The
    /// mean-pooled table rows see roughly `tokens`-fold smaller gradients
    /// than a dense layer of the same width, hence the hotter base rate —
    /// but not hotter than ASP staleness tolerates: 0.25 diverges under
    /// 4 async workers on a committed-view (wire) tier, 0.15 trains
    /// under every supported discipline. Exactly the workload-dependent
    /// BSP/ASP sensitivity the paper's argument rests on.
    pub fn sparse_embedding() -> Self {
        HyperParams {
            batch_size: 8,
            learning_rate: 0.15,
            momentum: 0.9,
            total_steps: 240,
            lr_schedule: LrSchedule::constant(),
        }
    }

    /// Learning rate in effect at `step` (base rate × schedule factor).
    pub fn lr_at(&self, step: u64) -> f64 {
        self.learning_rate * self.lr_schedule.factor_at(step)
    }

    /// The workload fraction `step / total_steps`, clamped to `[0, 1]`.
    pub fn fraction_at(&self, step: u64) -> f64 {
        (step as f64 / self.total_steps as f64).clamp(0.0, 1.0)
    }

    /// The step corresponding to workload fraction `f` (clamped to `[0,1]`).
    pub fn step_at_fraction(&self, f: f64) -> u64 {
        let f = f.clamp(0.0, 1.0);
        (f * self.total_steps as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_factors() {
        let h = HyperParams::resnet_cifar();
        assert_eq!(h.lr_at(0), 0.1);
        assert_eq!(h.lr_at(31_999), 0.1);
        assert!((h.lr_at(32_000) - 0.01).abs() < 1e-12);
        assert!((h.lr_at(48_000) - 0.001).abs() < 1e-12);
        assert_eq!(h.lr_schedule.first_decay_step(), Some(32_000));
    }

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::constant();
        assert_eq!(s.factor_at(0), 1.0);
        assert_eq!(s.factor_at(1_000_000), 1.0);
        assert_eq!(s.first_decay_step(), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_boundaries_panic() {
        let _ = LrSchedule::piecewise(vec![(100, 0.1), (50, 0.01)]);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn bad_factor_panics() {
        let _ = LrSchedule::piecewise(vec![(100, 1.5)]);
    }

    #[test]
    fn fraction_round_trip() {
        let h = HyperParams::resnet_cifar();
        assert_eq!(h.step_at_fraction(0.0625), 4_000);
        assert_eq!(h.step_at_fraction(0.5), 32_000);
        assert!((h.fraction_at(4_000) - 0.0625).abs() < 1e-12);
        assert_eq!(h.fraction_at(200_000), 1.0);
        assert_eq!(h.step_at_fraction(2.0), 64_000);
    }

    #[test]
    fn rescaled_schedule() {
        let s = LrSchedule::piecewise(vec![(32_000, 0.1), (48_000, 0.01)]);
        let r = s.rescaled(2, 1);
        assert_eq!(r.boundaries(), &[(64_000, 0.1), (96_000, 0.01)]);
        assert_eq!(r.factor_at(63_999), 1.0);
    }

    #[test]
    fn setup2_schedule_is_stretched() {
        let h = HyperParams::resnet_cifar100();
        assert_eq!(h.total_steps, 128_000);
        assert_eq!(h.lr_schedule.first_decay_step(), Some(64_000));
        // Decay boundaries sit at the same workload fractions as setup 1.
        assert!((h.fraction_at(64_000) - 0.5).abs() < 1e-12);
    }
}
