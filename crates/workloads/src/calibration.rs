//! Paper-reported endpoints used to calibrate the simulation substrates and
//! to check reproduction quality.
//!
//! Every number here is read directly from the paper (Table I, Fig. 5, 10,
//! 11–13). The convergence surrogate derives its internal constants from
//! these targets; the test suites and `EXPERIMENTS.md` compare measured
//! values back against them.

use serde::{Deserialize, Serialize};

use crate::setup::SetupId;

/// Paper-reported outcomes for one experiment setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTargets {
    /// Which setup these targets describe.
    pub setup: SetupId,
    /// Converged top-1 test accuracy when training entirely with BSP.
    pub bsp_accuracy: f64,
    /// Converged accuracy when training entirely with ASP (`None` when ASP
    /// diverges, as in setup 3).
    pub asp_accuracy: Option<f64>,
    /// Converged accuracy achieved by Sync-Switch at its timing policy.
    pub sync_switch_accuracy: f64,
    /// Run-to-run standard deviation of converged accuracy (paper repeats
    /// each configuration five times).
    pub accuracy_sigma: f64,
    /// The knee point: smallest BSP fraction whose converged accuracy
    /// matches BSP (the Sync-Switch timing policy for this setup).
    pub knee_fraction: f64,
    /// ASP-over-BSP cluster throughput ratio (images/s), no stragglers.
    pub asp_over_bsp_throughput: f64,
    /// Total training time of pure ASP normalized to pure BSP (Fig. 10a);
    /// `None` when ASP diverges.
    pub asp_time_fraction: Option<f64>,
    /// Total training time of Sync-Switch normalized to pure BSP (Fig. 10a).
    pub sync_switch_time_fraction: f64,
    /// Sync-Switch throughput speedup over BSP (Table I).
    pub throughput_speedup_vs_bsp: f64,
    /// Sync-Switch time-to-accuracy speedup over BSP (Table I).
    pub tta_speedup_vs_bsp: f64,
    /// Smallest BSP fraction below which training *diverges* (setup 3 only:
    /// ASP before the first LR decay is unstable).
    pub divergence_below_fraction: Option<f64>,
}

impl CalibrationTargets {
    /// Targets for a given setup.
    pub fn for_setup(setup: SetupId) -> Self {
        match setup {
            SetupId::One => CalibrationTargets {
                setup,
                bsp_accuracy: 0.919,
                asp_accuracy: Some(0.892),
                sync_switch_accuracy: 0.917,
                accuracy_sigma: 0.005,
                knee_fraction: 0.0625,
                asp_over_bsp_throughput: 6.59,
                asp_time_fraction: Some(0.152),
                sync_switch_time_fraction: 0.195,
                throughput_speedup_vs_bsp: 5.13,
                tta_speedup_vs_bsp: 3.99,
                divergence_below_fraction: None,
            },
            SetupId::Two => CalibrationTargets {
                setup,
                bsp_accuracy: 0.746,
                asp_accuracy: Some(0.708),
                sync_switch_accuracy: 0.746,
                accuracy_sigma: 0.006,
                knee_fraction: 0.125,
                asp_over_bsp_throughput: 1.86,
                asp_time_fraction: Some(0.538),
                sync_switch_time_fraction: 0.601,
                throughput_speedup_vs_bsp: 1.66,
                tta_speedup_vs_bsp: 1.60,
                divergence_below_fraction: None,
            },
            SetupId::Three => CalibrationTargets {
                setup,
                bsp_accuracy: 0.923,
                asp_accuracy: None,
                sync_switch_accuracy: 0.922,
                accuracy_sigma: 0.003,
                knee_fraction: 0.5,
                asp_over_bsp_throughput: 13.9,
                asp_time_fraction: None,
                sync_switch_time_fraction: 0.536,
                throughput_speedup_vs_bsp: 1.87,
                tta_speedup_vs_bsp: 1.08,
                divergence_below_fraction: Some(0.5),
            },
        }
    }

    /// The timing-policy switch fraction the paper found for this setup
    /// (P1 = 6.25 %, P2 = 12.5 %, P3 = 50 %).
    pub fn policy_fraction(&self) -> f64 {
        self.knee_fraction
    }

    /// The accuracy gap `BSP − ASP` that staleness damage must reproduce
    /// (zero when ASP diverges, where damage is unbounded).
    pub fn asp_accuracy_gap(&self) -> f64 {
        self.asp_accuracy
            .map(|a| self.bsp_accuracy - a)
            .unwrap_or(0.0)
    }

    /// Predicted total-time fraction vs BSP when the first `f` of the
    /// workload runs as BSP and the rest as ASP (ignoring switch overhead):
    /// `f + (1 − f) / r` with `r` the ASP-over-BSP throughput ratio.
    pub fn time_fraction_at(&self, f: f64) -> f64 {
        let f = f.clamp(0.0, 1.0);
        f + (1.0 - f) / self.asp_over_bsp_throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_gaps_match_paper() {
        let t1 = CalibrationTargets::for_setup(SetupId::One);
        assert!((t1.asp_accuracy_gap() - 0.027).abs() < 1e-12);
        let t3 = CalibrationTargets::for_setup(SetupId::Three);
        assert_eq!(t3.asp_accuracy_gap(), 0.0);
        assert_eq!(t3.divergence_below_fraction, Some(0.5));
    }

    #[test]
    fn time_model_is_consistent_with_fig10() {
        // With r = 6.59 the analytic time fractions should land near the
        // measured Fig. 10a values (switch overhead explains the residual).
        let t1 = CalibrationTargets::for_setup(SetupId::One);
        let predicted = t1.time_fraction_at(t1.knee_fraction);
        assert!(
            (predicted - t1.sync_switch_time_fraction).abs() < 0.03,
            "predicted {predicted} vs reported {}",
            t1.sync_switch_time_fraction
        );

        let t2 = CalibrationTargets::for_setup(SetupId::Two);
        let predicted2 = t2.time_fraction_at(t2.knee_fraction);
        assert!((predicted2 - t2.sync_switch_time_fraction).abs() < 0.03);

        let t3 = CalibrationTargets::for_setup(SetupId::Three);
        let predicted3 = t3.time_fraction_at(t3.knee_fraction);
        assert!((predicted3 - t3.sync_switch_time_fraction).abs() < 0.03);
    }

    #[test]
    fn fig2_reductions_follow_from_throughput_ratio() {
        // Paper intro: switching at 25% cuts total time by ~63.5% vs BSP,
        // and 25% vs 50% saves ~37.5%.
        let t1 = CalibrationTargets::for_setup(SetupId::One);
        let at25 = t1.time_fraction_at(0.25);
        let at50 = t1.time_fraction_at(0.50);
        assert!(
            (1.0 - at25 - 0.635).abs() < 0.02,
            "reduction {}",
            1.0 - at25
        );
        assert!((1.0 - at25 / at50 - 0.375).abs() < 0.03);
    }

    #[test]
    fn knee_ordering_across_setups() {
        let k1 = CalibrationTargets::for_setup(SetupId::One).knee_fraction;
        let k2 = CalibrationTargets::for_setup(SetupId::Two).knee_fraction;
        let k3 = CalibrationTargets::for_setup(SetupId::Three).knee_fraction;
        assert!(k1 < k2 && k2 < k3);
    }
}
