//! Deep-learning model profiles.

use serde::{Deserialize, Serialize};

/// A profile of a deep neural network sufficient for the cluster simulator:
/// parameter volume (drives communication) and per-sample compute time on the
/// reference GPU (drives step time).
///
/// The paper trains two members of the ResNet family from Tensor2Tensor;
/// the per-sample K80 timings below are calibrated so the simulated BSP/ASP
/// throughputs land in the ranges of paper Fig. 4.
///
/// # Example
///
/// ```
/// use sync_switch_workloads::ModelSpec;
/// let m = ModelSpec::resnet32();
/// assert!(m.param_bytes() > 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable model name.
    pub name: String,
    /// Number of trainable parameters.
    pub param_count: u64,
    /// Forward+backward time per training sample on one K80, in seconds.
    pub k80_per_sample_s: f64,
    /// Fixed per-step overhead (kernel launches, input pipeline), seconds.
    pub step_overhead_s: f64,
    /// Number of trainable variables (TensorFlow-style); sets the RPC chain
    /// depth that amplifies per-message straggler latency.
    pub variable_count: u32,
}

impl ModelSpec {
    /// ResNet32 for CIFAR (≈0.46 M parameters).
    pub fn resnet32() -> Self {
        ModelSpec {
            name: "ResNet32".to_string(),
            param_count: 464_154,
            k80_per_sample_s: 0.00115,
            step_overhead_s: 0.030,
            variable_count: 36,
        }
    }

    /// ResNet50 adapted for CIFAR inputs (≈25.6 M parameters).
    pub fn resnet50() -> Self {
        ModelSpec {
            name: "ResNet50".to_string(),
            param_count: 25_636_712,
            k80_per_sample_s: 0.00550,
            step_overhead_s: 0.035,
            variable_count: 108,
        }
    }

    /// Total parameter volume in bytes (f32 storage).
    pub fn param_bytes(&self) -> u64 {
        self.param_count * 4
    }

    /// Compute time for a mini-batch of `batch` samples on one K80, before
    /// stochastic jitter.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn compute_time_s(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        self.step_overhead_s + self.k80_per_sample_s * batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet32_profile() {
        let m = ModelSpec::resnet32();
        assert_eq!(m.param_count, 464_154);
        assert_eq!(m.param_bytes(), 464_154 * 4);
        // ~800 img/s single-K80 at batch 128 (paper-era measurements).
        let t = m.compute_time_s(128);
        let img_per_s = 128.0 / t;
        assert!(
            (600.0..1000.0).contains(&img_per_s),
            "throughput {img_per_s}"
        );
    }

    #[test]
    fn resnet50_is_heavier() {
        let small = ModelSpec::resnet32();
        let big = ModelSpec::resnet50();
        assert!(big.param_count > 20 * small.param_count);
        assert!(big.compute_time_s(128) > 3.0 * small.compute_time_s(128));
        assert!(big.variable_count > small.variable_count);
    }

    #[test]
    fn compute_time_scales_with_batch() {
        let m = ModelSpec::resnet32();
        let t128 = m.compute_time_s(128);
        let t1024 = m.compute_time_s(1024);
        // Fixed overhead amortizes: throughput at 1024 is higher but < 8x.
        let ratio = (1024.0 / t1024) / (128.0 / t128);
        assert!(ratio > 1.05 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let _ = ModelSpec::resnet32().compute_time_s(0);
    }
}
