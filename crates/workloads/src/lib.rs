//! Workload, dataset, hyper-parameter, and experiment-setup specifications
//! for the Sync-Switch reproduction.
//!
//! This crate is the single source of truth for the three experiment setups
//! evaluated in the paper (Table I) and for the calibration targets the
//! simulation substrates are fitted against:
//!
//! | Setup | Workload | Cluster |
//! |---|---|---|
//! | 1 | ResNet32 on CIFAR-10 | 8 × K80 |
//! | 2 | ResNet50 on CIFAR-100 | 8 × K80 |
//! | 3 | ResNet32 on CIFAR-10 | 16 × K80 |
//!
//! # Example
//!
//! ```
//! use sync_switch_workloads::ExperimentSetup;
//!
//! let setup = ExperimentSetup::one();
//! assert_eq!(setup.cluster_size, 8);
//! assert_eq!(setup.workload.hyper.total_steps, 64_000);
//! ```

pub mod calibration;
pub mod dataset;
pub mod hyper;
pub mod model;
pub mod protocol;
pub mod setup;

pub use calibration::CalibrationTargets;
pub use dataset::DatasetSpec;
pub use hyper::{HyperParams, LrSchedule};
pub use model::ModelSpec;
pub use protocol::SyncProtocol;
pub use setup::{ExperimentSetup, GpuKind, SetupId, TrainableKind, Workload};
