//! Experiment setups (paper Table I) and the registry of workloads that
//! train end-to-end on the real parameter-server tier.

use serde::{Deserialize, Serialize};

use sync_switch_nn::{Dataset, Network};

use crate::dataset::DatasetSpec;
use crate::hyper::HyperParams;
use crate::model::ModelSpec;

/// GPU accelerator kind. The paper evaluates on Nvidia K80 only; the enum
/// exists so other profiles can be added without API breakage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GpuKind {
    /// Nvidia Tesla K80 (the paper's GCP configuration).
    K80,
}

impl GpuKind {
    /// Relative speed factor versus the K80 reference (K80 = 1.0).
    pub fn speed_factor(self) -> f64 {
        match self {
            GpuKind::K80 => 1.0,
        }
    }
}

/// Identifier of one of the paper's three experiment setups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetupId {
    /// Setup 1: ResNet32 / CIFAR-10 / 8 workers.
    One,
    /// Setup 2: ResNet50 / CIFAR-100 / 8 workers.
    Two,
    /// Setup 3: ResNet32 / CIFAR-10 / 16 workers.
    Three,
}

impl SetupId {
    /// All three setups in paper order.
    pub fn all() -> [SetupId; 3] {
        [SetupId::One, SetupId::Two, SetupId::Three]
    }

    /// 1-based index as used in the paper's tables.
    pub fn index(self) -> u8 {
        match self {
            SetupId::One => 1,
            SetupId::Two => 2,
            SetupId::Three => 3,
        }
    }
}

impl std::fmt::Display for SetupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Exp. Setup {}", self.index())
    }
}

/// A distributed training workload: model + dataset + hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The neural network being trained.
    pub model: ModelSpec,
    /// The dataset it is trained on.
    pub dataset: DatasetSpec,
    /// User-provided initial hyper-parameters.
    pub hyper: HyperParams,
}

/// A full experiment configuration: workload plus cluster description
/// (paper Table I rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSetup {
    /// Which of the paper's setups this is.
    pub id: SetupId,
    /// The training workload.
    pub workload: Workload,
    /// Number of worker nodes (PSs are collocated 1:1 with workers).
    pub cluster_size: usize,
    /// Accelerator per node.
    pub gpu: GpuKind,
}

impl ExperimentSetup {
    /// Setup 1: ResNet32 on CIFAR-10, 8 × K80.
    pub fn one() -> Self {
        ExperimentSetup {
            id: SetupId::One,
            workload: Workload {
                model: ModelSpec::resnet32(),
                dataset: DatasetSpec::cifar10(),
                hyper: HyperParams::resnet_cifar(),
            },
            cluster_size: 8,
            gpu: GpuKind::K80,
        }
    }

    /// Setup 2: ResNet50 on CIFAR-100, 8 × K80.
    pub fn two() -> Self {
        ExperimentSetup {
            id: SetupId::Two,
            workload: Workload {
                model: ModelSpec::resnet50(),
                dataset: DatasetSpec::cifar100(),
                hyper: HyperParams::resnet_cifar100(),
            },
            cluster_size: 8,
            gpu: GpuKind::K80,
        }
    }

    /// Setup 3: ResNet32 on CIFAR-10, 16 × K80.
    pub fn three() -> Self {
        ExperimentSetup {
            id: SetupId::Three,
            workload: Workload {
                model: ModelSpec::resnet32(),
                dataset: DatasetSpec::cifar10(),
                hyper: HyperParams::resnet_cifar(),
            },
            cluster_size: 16,
            gpu: GpuKind::K80,
        }
    }

    /// Builds the setup for a given [`SetupId`].
    pub fn from_id(id: SetupId) -> Self {
        match id {
            SetupId::One => Self::one(),
            SetupId::Two => Self::two(),
            SetupId::Three => Self::three(),
        }
    }
}

/// A workload that trains **for real** — model, data, and gradients on the
/// multi-threaded PS tier of `sync-switch-ps` — as opposed to the
/// [`ExperimentSetup`]s, whose ResNet profiles drive the cluster
/// *simulator*. The three kinds deliberately differ in communication
/// structure, the axis Sync-Switch's BSP/ASP tradeoff pivots on:
///
/// * [`TrainableKind::MlpBlobs`] — dense gradients, tiny payloads (the
///   original smoke workload).
/// * [`TrainableKind::ConvShifted`] — dense gradients over a filter bank;
///   the shifted-patterns data makes locality (and therefore the conv
///   structure) matter.
/// * [`TrainableKind::SparseEmbedding`] — a vocab-dominated model whose
///   per-batch gradient touches only the embedding rows of the sampled
///   tokens; the workload the PS sparse push path ships row-sized updates
///   for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrainableKind {
    /// MLP on Gaussian blobs (dense, small).
    MlpBlobs,
    /// 1-D convnet on shifted patterns (dense, locality-sensitive).
    ConvShifted,
    /// Mean-pooled embedding classifier on Zipf-sampled tokens (sparse).
    SparseEmbedding,
}

impl TrainableKind {
    /// Every registered trainable workload, in registry order.
    pub fn all() -> [TrainableKind; 3] {
        [
            TrainableKind::MlpBlobs,
            TrainableKind::ConvShifted,
            TrainableKind::SparseEmbedding,
        ]
    }

    /// Short stable name, for reports and bench axes.
    pub fn name(self) -> &'static str {
        match self {
            TrainableKind::MlpBlobs => "mlp_blobs",
            TrainableKind::ConvShifted => "conv_shifted",
            TrainableKind::SparseEmbedding => "sparse_embedding",
        }
    }

    /// The practitioner-supplied hyper-parameters for this workload.
    pub fn hyper(self) -> HyperParams {
        match self {
            TrainableKind::MlpBlobs => HyperParams::mlp_blobs(),
            TrainableKind::ConvShifted => HyperParams::conv_shifted(),
            TrainableKind::SparseEmbedding => HyperParams::sparse_embedding(),
        }
    }

    /// Training-loss gate for the convergence harness: after the
    /// [`HyperParams::total_steps`] budget under any supported sync
    /// discipline, the probe loss must sit below this (all three start
    /// near `ln(classes) ≈ 1.39`).
    pub fn loss_threshold(self) -> f32 {
        match self {
            TrainableKind::MlpBlobs => 0.9,
            TrainableKind::ConvShifted => 0.9,
            TrainableKind::SparseEmbedding => 0.9,
        }
    }

    /// Whether this workload's per-batch gradient is sparse (and therefore
    /// exercises the PS sparse push path).
    pub fn has_sparse_gradients(self) -> bool {
        matches!(self, TrainableKind::SparseEmbedding)
    }

    /// Builds the model and the `(train, test)` datasets, fully determined
    /// by `seed`. The returned pieces plug directly into
    /// `sync_switch_ps::Trainer::new` — the trainer, the switcher, and the
    /// examples run every kind through the same code path.
    pub fn build(self, seed: u64) -> (Network, Dataset, Dataset) {
        match self {
            TrainableKind::MlpBlobs => {
                let data = Dataset::gaussian_blobs(4, 80, 8, 0.35, seed);
                let (train, test) = data.split(0.25);
                (Network::mlp(8, &[16], 4, seed), train, test)
            }
            TrainableKind::ConvShifted => {
                // length 32, kernel 5 → out_len 28; pool 7 → 4 per channel.
                let data = Dataset::shifted_patterns(4, 60, 32, 0.15, seed);
                let (train, test) = data.split(0.25);
                (
                    Network::conv1d_classifier(32, 8, 5, 7, 4, seed),
                    train,
                    test,
                )
            }
            TrainableKind::SparseEmbedding => {
                // The 512×16 table is ~95% of the parameters; a batch of 8
                // examples × 8 tokens touches at most 64 of its 512 rows.
                let data = Dataset::zipf_tokens(4, 60, 512, 8, 1.1, seed);
                let (train, test) = data.split(0.25);
                (
                    Network::embedding_classifier(512, 16, 24, 8, 4, seed),
                    train,
                    test,
                )
            }
        }
    }
}

impl std::fmt::Display for TrainableKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so width specifiers in report tables work.
        f.pad(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        let s1 = ExperimentSetup::one();
        let s2 = ExperimentSetup::two();
        let s3 = ExperimentSetup::three();
        assert_eq!(s1.cluster_size, 8);
        assert_eq!(s2.cluster_size, 8);
        assert_eq!(s3.cluster_size, 16);
        assert_eq!(s1.workload.model.name, "ResNet32");
        assert_eq!(s2.workload.model.name, "ResNet50");
        assert_eq!(s2.workload.dataset.classes, 100);
        assert_eq!(s3.workload.model, s1.workload.model);
    }

    #[test]
    fn from_id_round_trips() {
        for id in SetupId::all() {
            assert_eq!(ExperimentSetup::from_id(id).id, id);
        }
    }

    #[test]
    fn display_matches_paper_wording() {
        assert_eq!(SetupId::Two.to_string(), "Exp. Setup 2");
    }

    #[test]
    fn trainable_registry_builds_consistent_pieces() {
        for kind in TrainableKind::all() {
            let (mut model, train, test) = kind.build(11);
            assert_eq!(model.input_dim(), train.dim(), "{kind}");
            assert_eq!(model.classes(), train.classes(), "{kind}");
            assert_eq!(train.classes(), test.classes(), "{kind}");
            assert!(train.len() > test.len(), "{kind}");
            let hyper = kind.hyper();
            assert!(hyper.learning_rate > 0.0 && hyper.total_steps > 0);
            assert!(kind.loss_threshold() > 0.0);
            // Forward runs on a real batch (ids in vocab, shapes align).
            let (x, y) = train.batch(&[0, 1, 2]);
            let loss = {
                let logits = model.forward(&x);
                assert_eq!(logits.shape(), &[3, model.classes()]);
                model.loss(&x, &y)
            };
            assert!(loss.is_finite(), "{kind} initial loss {loss}");
        }
    }

    #[test]
    fn trainable_builds_are_seed_deterministic() {
        for kind in TrainableKind::all() {
            let (a, tr_a, _) = kind.build(3);
            let (b, tr_b, _) = kind.build(3);
            assert_eq!(a.params_flat(), b.params_flat(), "{kind}");
            assert_eq!(tr_a.features().data(), tr_b.features().data(), "{kind}");
            let (c, _, _) = kind.build(4);
            assert_ne!(a.params_flat(), c.params_flat(), "{kind}");
        }
    }

    #[test]
    fn sparse_flag_marks_the_embedding_workload() {
        assert!(!TrainableKind::MlpBlobs.has_sparse_gradients());
        assert!(!TrainableKind::ConvShifted.has_sparse_gradients());
        assert!(TrainableKind::SparseEmbedding.has_sparse_gradients());
        // The embedding workload really produces sparse runs after a
        // backward, and the dense kinds do not.
        for kind in TrainableKind::all() {
            let (mut model, train, _) = kind.build(5);
            let (x, y) = train.batch(&[0, 1, 2, 3]);
            model.loss_and_grad(&x, &y);
            let mut runs = Vec::new();
            assert_eq!(
                model.grad_nonzero_runs_into(&mut runs),
                kind.has_sparse_gradients(),
                "{kind}"
            );
        }
    }

    #[test]
    fn trainable_names_are_stable() {
        assert_eq!(TrainableKind::MlpBlobs.to_string(), "mlp_blobs");
        assert_eq!(TrainableKind::ConvShifted.to_string(), "conv_shifted");
        assert_eq!(
            TrainableKind::SparseEmbedding.to_string(),
            "sparse_embedding"
        );
    }
}
