//! Experiment setups (paper Table I).

use serde::{Deserialize, Serialize};

use crate::dataset::DatasetSpec;
use crate::hyper::HyperParams;
use crate::model::ModelSpec;

/// GPU accelerator kind. The paper evaluates on Nvidia K80 only; the enum
/// exists so other profiles can be added without API breakage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GpuKind {
    /// Nvidia Tesla K80 (the paper's GCP configuration).
    K80,
}

impl GpuKind {
    /// Relative speed factor versus the K80 reference (K80 = 1.0).
    pub fn speed_factor(self) -> f64 {
        match self {
            GpuKind::K80 => 1.0,
        }
    }
}

/// Identifier of one of the paper's three experiment setups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetupId {
    /// Setup 1: ResNet32 / CIFAR-10 / 8 workers.
    One,
    /// Setup 2: ResNet50 / CIFAR-100 / 8 workers.
    Two,
    /// Setup 3: ResNet32 / CIFAR-10 / 16 workers.
    Three,
}

impl SetupId {
    /// All three setups in paper order.
    pub fn all() -> [SetupId; 3] {
        [SetupId::One, SetupId::Two, SetupId::Three]
    }

    /// 1-based index as used in the paper's tables.
    pub fn index(self) -> u8 {
        match self {
            SetupId::One => 1,
            SetupId::Two => 2,
            SetupId::Three => 3,
        }
    }
}

impl std::fmt::Display for SetupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Exp. Setup {}", self.index())
    }
}

/// A distributed training workload: model + dataset + hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The neural network being trained.
    pub model: ModelSpec,
    /// The dataset it is trained on.
    pub dataset: DatasetSpec,
    /// User-provided initial hyper-parameters.
    pub hyper: HyperParams,
}

/// A full experiment configuration: workload plus cluster description
/// (paper Table I rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSetup {
    /// Which of the paper's setups this is.
    pub id: SetupId,
    /// The training workload.
    pub workload: Workload,
    /// Number of worker nodes (PSs are collocated 1:1 with workers).
    pub cluster_size: usize,
    /// Accelerator per node.
    pub gpu: GpuKind,
}

impl ExperimentSetup {
    /// Setup 1: ResNet32 on CIFAR-10, 8 × K80.
    pub fn one() -> Self {
        ExperimentSetup {
            id: SetupId::One,
            workload: Workload {
                model: ModelSpec::resnet32(),
                dataset: DatasetSpec::cifar10(),
                hyper: HyperParams::resnet_cifar(),
            },
            cluster_size: 8,
            gpu: GpuKind::K80,
        }
    }

    /// Setup 2: ResNet50 on CIFAR-100, 8 × K80.
    pub fn two() -> Self {
        ExperimentSetup {
            id: SetupId::Two,
            workload: Workload {
                model: ModelSpec::resnet50(),
                dataset: DatasetSpec::cifar100(),
                hyper: HyperParams::resnet_cifar100(),
            },
            cluster_size: 8,
            gpu: GpuKind::K80,
        }
    }

    /// Setup 3: ResNet32 on CIFAR-10, 16 × K80.
    pub fn three() -> Self {
        ExperimentSetup {
            id: SetupId::Three,
            workload: Workload {
                model: ModelSpec::resnet32(),
                dataset: DatasetSpec::cifar10(),
                hyper: HyperParams::resnet_cifar(),
            },
            cluster_size: 16,
            gpu: GpuKind::K80,
        }
    }

    /// Builds the setup for a given [`SetupId`].
    pub fn from_id(id: SetupId) -> Self {
        match id {
            SetupId::One => Self::one(),
            SetupId::Two => Self::two(),
            SetupId::Three => Self::three(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        let s1 = ExperimentSetup::one();
        let s2 = ExperimentSetup::two();
        let s3 = ExperimentSetup::three();
        assert_eq!(s1.cluster_size, 8);
        assert_eq!(s2.cluster_size, 8);
        assert_eq!(s3.cluster_size, 16);
        assert_eq!(s1.workload.model.name, "ResNet32");
        assert_eq!(s2.workload.model.name, "ResNet50");
        assert_eq!(s2.workload.dataset.classes, 100);
        assert_eq!(s3.workload.model, s1.workload.model);
    }

    #[test]
    fn from_id_round_trips() {
        for id in SetupId::all() {
            assert_eq!(ExperimentSetup::from_id(id).id, id);
        }
    }

    #[test]
    fn display_matches_paper_wording() {
        assert_eq!(SetupId::Two.to_string(), "Exp. Setup 2");
    }
}
