//! Dataset specifications.

use serde::{Deserialize, Serialize};

/// A classification dataset profile.
///
/// Only the sizes matter to the simulator (epoch accounting and data-parallel
/// sharding); the real-execution path in `sync-switch-nn` substitutes
/// deterministic synthetic data of the same shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of training examples.
    pub train_examples: u64,
    /// Number of held-out test examples.
    pub test_examples: u64,
    /// Number of classification classes.
    pub classes: u32,
    /// Square image side length in pixels.
    pub image_size: u32,
}

impl DatasetSpec {
    /// CIFAR-10: 60 K 32×32 images over 10 classes.
    pub fn cifar10() -> Self {
        DatasetSpec {
            name: "CIFAR-10".to_string(),
            train_examples: 50_000,
            test_examples: 10_000,
            classes: 10,
            image_size: 32,
        }
    }

    /// CIFAR-100: 60 K 32×32 images over 100 classes.
    pub fn cifar100() -> Self {
        DatasetSpec {
            name: "CIFAR-100".to_string(),
            train_examples: 50_000,
            test_examples: 10_000,
            classes: 100,
            image_size: 32,
        }
    }

    /// Number of steps in one epoch at the given *global* batch size.
    ///
    /// # Panics
    ///
    /// Panics if `global_batch == 0`.
    pub fn steps_per_epoch(&self, global_batch: usize) -> u64 {
        assert!(global_batch > 0, "global batch must be positive");
        self.train_examples.div_ceil(global_batch as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar_profiles() {
        let c10 = DatasetSpec::cifar10();
        let c100 = DatasetSpec::cifar100();
        assert_eq!(c10.train_examples + c10.test_examples, 60_000);
        assert_eq!(c100.classes, 100);
        assert_eq!(c10.classes, 10);
        assert_eq!(c10.image_size, 32);
    }

    #[test]
    fn steps_per_epoch_rounds_up() {
        let c10 = DatasetSpec::cifar10();
        assert_eq!(c10.steps_per_epoch(128), 391); // 50000/128 = 390.6
        assert_eq!(c10.steps_per_epoch(1024), 49); // 48.8
        assert_eq!(c10.steps_per_epoch(50_000), 1);
    }
}
