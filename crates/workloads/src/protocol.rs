//! Parameter synchronization protocols.

use serde::{Deserialize, Serialize};

/// A distributed parameter synchronization protocol (paper §II-B).
///
/// Sync-Switch deliberately restricts itself to the two extremes: fully
/// synchronous BSP and fully asynchronous ASP. Semi-synchronous protocols
/// (SSP, DSSP) trade between them but add hyper-parameters; the paper's
/// protocol policy shows the extremes suffice when switched at the right
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncProtocol {
    /// Bulk Synchronous Parallel: gradients are aggregated at a barrier and
    /// applied once per global step; equivalent to large-batch mini-batch
    /// SGD. High accuracy, straggler-sensitive.
    Bsp,
    /// Asynchronous Parallel: every worker pushes and pulls at its own pace;
    /// updates apply immediately. High throughput, stale gradients.
    Asp,
}

impl SyncProtocol {
    /// Whether this protocol uses a synchronization barrier.
    pub fn is_synchronous(self) -> bool {
        matches!(self, SyncProtocol::Bsp)
    }

    /// The other protocol.
    pub fn other(self) -> SyncProtocol {
        match self {
            SyncProtocol::Bsp => SyncProtocol::Asp,
            SyncProtocol::Asp => SyncProtocol::Bsp,
        }
    }
}

impl std::fmt::Display for SyncProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncProtocol::Bsp => write!(f, "BSP"),
            SyncProtocol::Asp => write!(f, "ASP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_properties() {
        assert!(SyncProtocol::Bsp.is_synchronous());
        assert!(!SyncProtocol::Asp.is_synchronous());
        assert_eq!(SyncProtocol::Bsp.other(), SyncProtocol::Asp);
        assert_eq!(SyncProtocol::Asp.other(), SyncProtocol::Bsp);
        assert_eq!(SyncProtocol::Bsp.to_string(), "BSP");
        assert_eq!(SyncProtocol::Asp.to_string(), "ASP");
    }
}
