//! Property-based tests of workload specifications.

use proptest::prelude::*;
use sync_switch_workloads::{DatasetSpec, HyperParams, LrSchedule, ModelSpec};

proptest! {
    /// LR schedule factors are non-increasing in the step.
    #[test]
    fn schedule_factor_non_increasing(s1 in 0u64..200_000, s2 in 0u64..200_000) {
        let sched = LrSchedule::piecewise(vec![(32_000, 0.1), (48_000, 0.01)]);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(sched.factor_at(hi) <= sched.factor_at(lo));
    }

    /// fraction_at and step_at_fraction are inverse (up to rounding).
    #[test]
    fn fraction_step_round_trip(frac in 0.0f64..=1.0) {
        let h = HyperParams::resnet_cifar();
        let step = h.step_at_fraction(frac);
        let back = h.fraction_at(step);
        prop_assert!((back - frac).abs() <= 1.0 / h.total_steps as f64);
    }

    /// Compute time is strictly increasing and affine in the batch size.
    #[test]
    fn compute_time_affine(b1 in 1usize..2048, b2 in 1usize..2048) {
        let m = ModelSpec::resnet32();
        let t1 = m.compute_time_s(b1);
        let t2 = m.compute_time_s(b2);
        if b1 < b2 {
            prop_assert!(t1 < t2);
        }
        // Affinity: t(b) − t(0⁺) proportional to b.
        let slope1 = (t1 - m.step_overhead_s) / b1 as f64;
        let slope2 = (t2 - m.step_overhead_s) / b2 as f64;
        prop_assert!((slope1 - slope2).abs() < 1e-12);
    }

    /// Steps per epoch times the batch covers the dataset exactly once
    /// (within one batch).
    #[test]
    fn steps_per_epoch_covers_dataset(batch in 1usize..4096) {
        let d = DatasetSpec::cifar10();
        let steps = d.steps_per_epoch(batch);
        let covered = steps * batch as u64;
        prop_assert!(covered >= d.train_examples);
        prop_assert!(covered < d.train_examples + batch as u64);
    }

    /// Rescaling a schedule preserves relative boundary positions.
    #[test]
    fn rescaled_schedule_preserves_fractions(mult in 1u64..10) {
        let s = LrSchedule::piecewise(vec![(32_000, 0.1), (48_000, 0.01)]);
        let r = s.rescaled(mult, 1);
        for (orig, scaled) in s.boundaries().iter().zip(r.boundaries()) {
            prop_assert_eq!(scaled.0, orig.0 * mult);
            prop_assert_eq!(scaled.1, orig.1);
        }
    }
}
