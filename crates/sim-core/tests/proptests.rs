//! Property-based tests of the simulation engine primitives.

use proptest::prelude::*;
use sync_switch_sim::{DetRng, EventQueue, RunningStats, SimTime, SlidingWindow};

proptest! {
    /// Events pop in non-decreasing time order, and same-time events pop in
    /// insertion order, for arbitrary schedules.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(&prev) = seen_at_time.last() {
                    prop_assert!(idx > prev, "ties must preserve insertion order");
                }
                seen_at_time.push(idx);
            } else {
                seen_at_time = vec![idx];
            }
            last_time = t;
        }
    }

    /// The queue drains exactly what was scheduled.
    #[test]
    fn queue_conserves_events(times in proptest::collection::vec(0.0f64..100.0, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_secs(t), ());
        }
        prop_assert_eq!(q.len(), times.len());
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert!(q.is_empty());
    }

    /// Welford running stats match the naive two-pass computation.
    #[test]
    fn running_stats_match_naive(data in proptest::collection::vec(-1e5f64..1e5, 1..200)) {
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.std() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()));
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn running_stats_merge_associative(
        a in proptest::collection::vec(-1e4f64..1e4, 0..100),
        b in proptest::collection::vec(-1e4f64..1e4, 0..100),
    ) {
        let mut left = RunningStats::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = RunningStats::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        let mut whole = RunningStats::new();
        for &x in a.iter().chain(&b) {
            whole.push(x);
        }
        prop_assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((left.std() - whole.std()).abs() < 1e-6 * (1.0 + whole.std()));
        }
    }

    /// A sliding window always reports the mean of its last `cap` pushes.
    #[test]
    fn sliding_window_mean_is_tail_mean(
        cap in 1usize..20,
        data in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut w = SlidingWindow::new(cap);
        for &x in &data {
            w.push(x);
        }
        let tail: Vec<f64> = data.iter().rev().take(cap).copied().collect();
        let expect = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!((w.mean() - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        prop_assert_eq!(w.len(), tail.len());
    }

    /// Derived RNG streams are reproducible and label-separated.
    #[test]
    fn derived_streams_reproducible(seed in any::<u64>(), idx in 0u64..1000) {
        let root = DetRng::new(seed);
        let mut a = root.derive("stream", idx);
        let mut b = root.derive("stream", idx);
        let mut c = root.derive("other", idx);
        let (x, y) = (a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        prop_assert_eq!(x, y);
        // Different labels virtually never collide on the first draw.
        let z = c.uniform(0.0, 1.0);
        prop_assert_ne!(x, z);
    }

    /// SimTime arithmetic is consistent with f64 seconds.
    #[test]
    fn simtime_arithmetic(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let ta = SimTime::from_secs(a);
        let tb = SimTime::from_secs(b);
        prop_assert_eq!((ta + tb).as_secs(), a + b);
        prop_assert_eq!(ta.max(tb).as_secs(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_secs(), a.min(b));
        prop_assert_eq!(ta < tb, a < b);
    }
}
