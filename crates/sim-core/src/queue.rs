//! Stable event queue keyed by [`SimTime`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a point in virtual time.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    // Reversed so the BinaryHeap (a max-heap) pops the *earliest* event;
    // ties broken by insertion sequence for deterministic replay.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// Events scheduled at the same instant are delivered in insertion order,
/// which makes simulations reproducible regardless of payload contents.
///
/// # Example
///
/// ```
/// use sync_switch_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1.0), "a");
/// q.schedule(SimTime::from_secs(1.0), "b");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time, which would
    /// violate causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedules `payload` after a relative delay from the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    pub fn schedule_after(&mut self, delay: SimTime, payload: E) {
        assert!(
            delay.is_valid_duration(),
            "delay must be a finite non-negative duration, got {:?}",
            delay
        );
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Returns the time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2.0));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "first");
        q.pop();
        q.schedule_after(SimTime::from_secs(5.0), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
