//! Sampling distributions for compute-time and noise models.

use crate::rng::DetRng;

/// A distribution that can be sampled with a [`DetRng`].
pub trait Sample {
    /// Draws one sample.
    fn sample(&self, rng: &mut DetRng) -> f64;

    /// The distribution mean (used by analytic throughput estimates).
    fn mean(&self) -> f64;
}

/// Normal distribution `N(mean, std²)`.
///
/// # Example
///
/// ```
/// use sync_switch_sim::{DetRng, Normal, Sample};
/// let d = Normal::new(10.0, 2.0);
/// let x = d.sample(&mut DetRng::new(0));
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(mean.is_finite() && std.is_finite() && std >= 0.0);
        Normal { mean, std }
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.mean + self.std * rng.standard_normal()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal distribution parameterized by the *target* mean and the sigma
/// of the underlying normal (a convenient form for per-step compute jitter:
/// strictly positive, right-skewed like real GPU step times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal whose *mean* is `mean` with log-space deviation
    /// `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`, `sigma < 0`, or either is non-finite.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0 && sigma.is_finite() && sigma >= 0.0);
        // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        LogNormal {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    /// Log-space sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0);
        Exponential { rate }
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        -rng.uniform(f64::MIN_POSITIVE, 1.0).ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &impl Sample, n: usize, seed: u64) -> f64 {
        let mut rng = DetRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_mean_matches() {
        let d = Normal::new(5.0, 2.0);
        let m = empirical_mean(&d, 20_000, 10);
        assert!((m - 5.0).abs() < 0.05, "{m}");
        assert_eq!(d.mean(), 5.0);
    }

    #[test]
    fn lognormal_mean_matches_and_positive() {
        let d = LogNormal::with_mean(0.35, 0.2);
        let mut rng = DetRng::new(11);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x = d.sample(&mut rng);
            assert!(x > 0.0);
            sum += x;
        }
        let m = sum / 20_000.0;
        assert!((m - 0.35).abs() < 0.01, "{m}");
        assert!((d.mean() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn lognormal_zero_sigma_is_deterministic() {
        let d = LogNormal::with_mean(2.0, 0.0);
        let mut rng = DetRng::new(12);
        for _ in 0..10 {
            assert!((d.sample(&mut rng) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(4.0);
        let m = empirical_mean(&d, 40_000, 13);
        assert!((m - 0.25).abs() < 0.01, "{m}");
        assert_eq!(d.mean(), 0.25);
    }

    #[test]
    #[should_panic]
    fn lognormal_rejects_nonpositive_mean() {
        let _ = LogNormal::with_mean(0.0, 0.1);
    }
}
