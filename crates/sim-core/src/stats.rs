//! Running and windowed statistics used by profilers and detectors.

use std::collections::VecDeque;

/// Incremental mean / variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use sync_switch_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 if fewer than 2 observations).
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-capacity sliding window with O(1) mean queries.
///
/// Used by the straggler detector: per-worker throughput is tracked over a
/// sliding window and compared against the cluster mean minus one standard
/// deviation (paper §IV-B2).
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` recent observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            sum: 0.0,
        }
    }

    /// Pushes an observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.capacity {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
            }
        }
        self.buf.push_back(x);
        self.sum += x;
    }

    /// Mean over the retained observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Standard deviation over the retained observations.
    pub fn std(&self) -> f64 {
        if self.buf.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.buf.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.buf.len() as f64;
        var.sqrt()
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no observations yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Clears all observations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// Returns the `q`-quantile (0..=1) of the data using linear interpolation.
///
/// Returns `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_mean_std() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.std() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std() - all.std()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn sliding_window_evicts() {
        let mut w = SlidingWindow::new(3);
        for x in [1.0, 2.0, 3.0] {
            w.push(x);
        }
        assert_eq!(w.mean(), 2.0);
        assert!(w.is_full());
        w.push(10.0); // evicts 1.0
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn sliding_window_std() {
        let mut w = SlidingWindow::new(4);
        for x in [2.0, 4.0, 6.0, 8.0] {
            w.push(x);
        }
        assert!((w.std() - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 0.5), Some(3.0));
        assert_eq!(quantile(&data, 1.0), Some(5.0));
        assert_eq!(quantile(&data, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
