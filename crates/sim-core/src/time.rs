//! Virtual simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point (or span) of virtual time, stored as seconds in an `f64`.
///
/// `SimTime` implements a *total* order via [`f64::total_cmp`] so it can be
/// used as an event-queue key. Constructors reject NaN, which keeps the total
/// order consistent with the arithmetic order for every reachable value.
///
/// # Example
///
/// ```
/// use sync_switch_sim::SimTime;
/// let t = SimTime::from_secs(1.5) + SimTime::from_millis(500.0);
/// assert_eq!(t.as_secs(), 2.0);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is NaN.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1e3)
    }

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is NaN.
    pub fn from_micros(micros: f64) -> Self {
        Self::from_secs(micros / 1e6)
    }

    /// Creates a time from minutes.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is NaN.
    pub fn from_minutes(minutes: f64) -> Self {
        Self::from_secs(minutes * 60.0)
    }

    /// Returns the value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns `true` if this time is non-negative and finite.
    pub fn is_valid_duration(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Returns the maximum of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the minimum of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60.0 {
            write!(f, "{:.2}min", self.0 / 60.0)
        } else if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else {
            write!(f, "{:.3}ms", self.0 * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_convert_units() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(2_000_000.0).as_secs(), 2.0);
        assert_eq!(SimTime::from_minutes(2.0).as_secs(), 120.0);
        assert_eq!(SimTime::from_secs(90.0).as_minutes(), 1.5);
    }

    #[test]
    fn arithmetic_behaves_like_f64_seconds() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(1.5);
        assert_eq!((a + b).as_secs(), 4.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 2.0).as_secs(), 6.0);
        assert_eq!((a / 2.0).as_secs(), 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 4.5);
        c -= b;
        assert_eq!(c.as_secs(), 3.0);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let ts = [
            SimTime::from_secs(0.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(-1.0),
            SimTime::from_secs(f64::INFINITY),
        ];
        let mut sorted = ts;
        sorted.sort();
        assert_eq!(sorted[0], SimTime::from_secs(-1.0));
        assert_eq!(sorted[3], SimTime::from_secs(f64::INFINITY));
        assert!(SimTime::from_secs(1.0) > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn min_max_and_sum() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total.as_secs(), 5.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_secs(120.0)), "2.00min");
        assert_eq!(format!("{}", SimTime::from_secs(2.5)), "2.500s");
        assert_eq!(format!("{}", SimTime::from_millis(1.5)), "1.500ms");
    }

    #[test]
    fn valid_duration_checks() {
        assert!(SimTime::from_secs(0.0).is_valid_duration());
        assert!(!SimTime::from_secs(-1.0).is_valid_duration());
        assert!(!SimTime::from_secs(f64::INFINITY).is_valid_duration());
    }
}
