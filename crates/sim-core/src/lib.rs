//! Deterministic discrete-event simulation engine used by the Sync-Switch
//! cluster and convergence models.
//!
//! The engine is deliberately small: a virtual clock, a stable priority queue
//! of typed events, seeded random-number streams, a handful of sampling
//! distributions, and running/windowed statistics. Everything is fully
//! deterministic for a fixed seed, which the reproduction harness relies on.
//!
//! # Example
//!
//! ```
//! use sync_switch_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(2.0), "later");
//! q.schedule(SimTime::from_secs(1.0), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::from_secs(1.0));
//! ```

pub mod dist;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Exponential, LogNormal, Normal, Sample};
pub use queue::EventQueue;
pub use rng::DetRng;
pub use stats::{RunningStats, SlidingWindow};
pub use time::SimTime;
