//! Deterministic, splittable random-number streams.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG with support for deriving independent sub-streams.
///
/// Every stochastic component of the simulator (per-worker compute jitter,
/// gradient noise, straggler arrival, search-trial outcomes, …) owns its own
/// `DetRng` derived from the experiment seed plus a label, so adding a new
/// consumer never perturbs the draws seen by existing ones.
///
/// # Example
///
/// ```
/// use sync_switch_sim::DetRng;
///
/// let mut a = DetRng::new(42).derive("worker", 0);
/// let mut b = DetRng::new(42).derive("worker", 0);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Creates a stream from a root seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream identified by a label and index.
    ///
    /// Derivation mixes the label bytes and index into the parent seed with
    /// an FNV-1a style hash; it does not consume any randomness from `self`.
    pub fn derive(&self, label: &str, index: u64) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= index;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        DetRng::new(h)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer sample in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Standard-normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = DetRng::new(42);
        let mut w0 = root.derive("worker", 0);
        let mut w0b = root.derive("worker", 0);
        let mut w1 = root.derive("worker", 1);
        let mut n0 = root.derive("network", 0);
        let x = w0.next_u64();
        assert_eq!(x, w0b.next_u64());
        assert_ne!(x, w1.next_u64());
        assert_ne!(x, n0.next_u64());
    }

    #[test]
    fn derive_does_not_consume_parent_state() {
        let mut root = DetRng::new(42);
        let before = root.clone().next_u64();
        let _child = root.derive("x", 0);
        assert_eq!(root.next_u64(), before);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = DetRng::new(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let x = rng.uniform(3.0, 5.0);
            assert!((3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move items");
    }
}
