//! The dense tensor type and elementwise operations.

use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// Shapes are validated on every operation; mismatches panic with a message
/// naming both shapes, because in a training loop a silent broadcast is a
/// far worse failure mode than a crash.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape has zero elements on any axis.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = checked_len(shape);
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = checked_len(shape);
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Builds a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n = checked_len(shape);
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for validated
    /// shapes, but required for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element accessor for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or the tensor is not 2-D.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        let cols = self.cols();
        assert!(r < self.rows() && c < cols, "index ({r},{c}) out of bounds");
        self.data[r * cols + c]
    }

    /// Mutable element accessor for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or the tensor is not 2-D.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let cols = self.cols();
        assert!(r < self.rows() && c < cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * cols + c]
    }

    /// Reshapes in place to a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, shape: &[usize]) {
        let n = checked_len(shape);
        assert_eq!(
            n,
            self.data.len(),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            n
        );
        self.shape = shape.to_vec();
    }

    /// Elementwise addition: `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction: `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.check_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (BLAS `axpy`), the core of every SGD
    /// update in the parameter server.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.check_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|x| x * scalar)
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, scalar: f32) {
        for a in &mut self.data {
            *a *= scalar;
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        self.check_same_shape(other);
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 if empty).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Argmax along the last axis of a 2-D tensor, one result per row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (r, c) = (self.rows(), self.cols());
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                let mut best = 0;
                for (j, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Whether all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn check_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "shape must have at least one axis");
    let mut n: usize = 1;
    for &d in shape {
        assert!(d > 0, "shape axes must be positive, got {shape:?}");
        n = n
            .checked_mul(d)
            .unwrap_or_else(|| panic!("shape {shape:?} overflows"));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn eye_matrix() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(0, 0), 1.0);
        assert_eq!(i.at(1, 2), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let g = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        a.axpy(-0.1, &g);
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn argmax_rows_picks_first_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 9.0, 2.0, 9.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        t.reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(2, 1), 5.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_axis_panics() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn finiteness_check() {
        let ok = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        assert!(ok.is_finite());
        let bad = Tensor::from_vec(vec![1.0, f32::NAN], &[2]);
        assert!(!bad.is_finite());
        let inf = Tensor::from_vec(vec![f32::INFINITY, 0.0], &[2]);
        assert!(!inf.is_finite());
    }
}
