//! 2-D linear algebra: matrix products and transposes.

use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product of two 2-D tensors: `(m×k) · (k×n) → (m×n)`.
    ///
    /// Uses a cache-friendly i-k-j loop order; at the layer sizes used by the
    /// training substrate this is comfortably fast enough.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "matmul inner dimension mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` without materializing the transpose:
    /// `(k×m)ᵀ·(k×n) → (m×n)`. Used for weight gradients `Xᵀ·δ`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the shared dimension disagrees.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "t_matmul leading dimension mismatch: {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` without materializing the transpose:
    /// `(m×k)·(n×k)ᵀ → (m×n)`. Used for input gradients `δ·Wᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the shared dimension disagrees.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "matmul_t trailing dimension mismatch: {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Sums a 2-D tensor over rows, yielding a `[cols]` vector. Used for
    /// bias gradients.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Adds a `[cols]` vector to every row of a 2-D tensor in place. Used
    /// for bias application.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_row_vector(&mut self, v: &Tensor) {
        let (m, n) = (self.rows(), self.cols());
        assert_eq!(
            v.shape(),
            &[n],
            "row vector shape {:?} incompatible with {:?}",
            v.shape(),
            self.shape()
        );
        for i in 0..m {
            for j in 0..n {
                self.data_mut()[i * n + j] += v.data()[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let d = t(&[0.5, -1.0, 2.0, 0.0, 1.0, 3.0], &[3, 2]);
        let fast = x.t_matmul(&d);
        let slow = x.transpose().matmul(&d);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let d = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let w = t(&[5.0, 6.0, 7.0, 8.0, 9.0, 10.0], &[3, 2]);
        let fast = d.matmul_t(&w);
        let slow = d.matmul(&w.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn sum_rows_and_bias() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_rows().data(), &[5.0, 7.0, 9.0]);
        let mut b = a.clone();
        b.add_row_vector(&t(&[10.0, 20.0, 30.0], &[3]));
        assert_eq!(b.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }
}
