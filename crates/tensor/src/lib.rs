//! Minimal dense `f32` tensor library backing the Sync-Switch neural-network
//! substrate.
//!
//! This is not a general array-programming library: it implements exactly the
//! operations the training substrate needs — row-major dense storage,
//! elementwise arithmetic, 2-D matrix products, reductions, and random
//! initialization — with argument validation and deterministic behaviour.
//!
//! # Example
//!
//! ```
//! use sync_switch_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod init;
pub mod linalg;
pub mod tensor;

pub use init::Init;
pub use tensor::Tensor;
