//! Random parameter initialization.

use rand::Rng;

use crate::tensor::Tensor;

/// Parameter initialization schemes.
///
/// The paper repeats every experiment "using the same model parameter
/// initialization algorithm" (§VI-A); the deterministic-seed plumbing here
/// mirrors that methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f64,
    },
    /// Glorot/Xavier uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)`, suited to ReLU nets.
    HeNormal,
}

impl Init {
    /// Materializes a `[fan_in, fan_out]`-shaped weight tensor (or any
    /// shape, with fans inferred from the first/last axes).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or has a zero axis.
    pub fn tensor<R: Rng>(self, shape: &[usize], rng: &mut R) -> Tensor {
        let fan_in = shape[0] as f64;
        let fan_out = *shape.last().expect("shape must be non-empty") as f64;
        let mut t = Tensor::zeros(shape);
        match self {
            Init::Zeros => {}
            Init::Uniform { limit } => {
                for x in t.data_mut() {
                    *x = rng.gen_range(-limit..limit) as f32;
                }
            }
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out)).sqrt();
                for x in t.data_mut() {
                    *x = rng.gen_range(-limit..limit) as f32;
                }
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in).sqrt();
                for x in t.data_mut() {
                    *x = (std * standard_normal(rng)) as f32;
                }
            }
        }
        t
    }
}

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_init() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Init::Zeros.tensor(&[4, 4], &mut rng);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Init::XavierUniform.tensor(&[100, 50], &mut rng);
        let limit = (6.0 / 150.0_f64).sqrt() as f32;
        assert!(t.data().iter().all(|x| x.abs() <= limit));
        // Should actually use the range, not collapse near zero.
        assert!(t.data().iter().any(|x| x.abs() > limit * 0.5));
    }

    #[test]
    fn he_normal_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Init::HeNormal.tensor(&[200, 200], &mut rng);
        let mean = t.mean();
        let std =
            (t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32).sqrt();
        let expect = (2.0f32 / 200.0).sqrt();
        assert!((std - expect).abs() / expect < 0.1, "std {std} vs {expect}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Init::HeNormal.tensor(&[10, 10], &mut StdRng::seed_from_u64(7));
        let b = Init::HeNormal.tensor(&[10, 10], &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
