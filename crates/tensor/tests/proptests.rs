//! Property-based tests of tensor algebra identities.

use proptest::prelude::*;
use sync_switch_tensor::Tensor;

/// Strategy: a small 2-D tensor with bounded values.
fn tensor2(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]))
}

fn assert_close(a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data()) {
        prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(a in tensor2(3, 4), b in tensor2(3, 4), c in tensor2(4, 2)) {
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        assert_close(&lhs, &rhs)?;
    }

    /// Transpose reverses multiplication: (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_reverses_product(a in tensor2(3, 4), b in tensor2(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_close(&lhs, &rhs)?;
    }

    /// The fused transposed products equal their explicit forms.
    #[test]
    fn fused_products_match(x in tensor2(5, 3), d in tensor2(5, 2), w in tensor2(3, 2)) {
        assert_close(&x.t_matmul(&d), &x.transpose().matmul(&d))?;
        assert_close(&d.matmul_t(&w), &d.matmul(&w.transpose()))?;
    }

    /// axpy is linear: axpy(α, g) then axpy(β, g) == axpy(α+β, g).
    #[test]
    fn axpy_is_additive(p in tensor2(2, 6), g in tensor2(2, 6), alpha in -2.0f32..2.0, beta in -2.0f32..2.0) {
        let mut two_step = p.clone();
        two_step.axpy(alpha, &g);
        two_step.axpy(beta, &g);
        let mut one_step = p.clone();
        one_step.axpy(alpha + beta, &g);
        assert_close(&two_step, &one_step)?;
    }

    /// Scaling by a scalar multiplies the L2 norm by |s|.
    #[test]
    fn norm_is_homogeneous(t in tensor2(4, 4), s in -5.0f32..5.0) {
        let scaled = t.scale(s);
        prop_assert!((scaled.l2_norm() - s.abs() * t.l2_norm()).abs() < 1e-2 * (1.0 + t.l2_norm()));
    }

    /// sum_rows equals the sum of per-row slices.
    #[test]
    fn sum_rows_matches_manual(t in tensor2(6, 3)) {
        let summed = t.sum_rows();
        for j in 0..3 {
            let manual: f32 = (0..6).map(|i| t.at(i, j)).sum();
            prop_assert!((summed.data()[j] - manual).abs() < 1e-3);
        }
    }

    /// Reshape preserves data and total length for compatible shapes.
    #[test]
    fn reshape_preserves_data(t in tensor2(4, 6)) {
        let mut r = t.clone();
        r.reshape(&[6, 4]);
        prop_assert_eq!(r.data(), t.data());
        r.reshape(&[24]);
        prop_assert_eq!(r.len(), 24);
    }

    /// argmax_rows returns indices within bounds pointing at row maxima.
    #[test]
    fn argmax_rows_points_at_maxima(t in tensor2(5, 4)) {
        for (i, j) in t.argmax_rows().into_iter().enumerate() {
            prop_assert!(j < 4);
            for k in 0..4 {
                prop_assert!(t.at(i, j) >= t.at(i, k));
            }
        }
    }
}
